package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hwgc"
	"hwgc/internal/plan"
)

// maxBodyBytes bounds request bodies; inline plans are the only large
// payloads and 8 MiB of JSON is already a ~100k-object graph.
const maxBodyBytes = 8 << 20

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// statusRecorder captures the final status code for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so instrumented handlers can stream
// (the SSE endpoint asserts http.Flusher on its ResponseWriter).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an endpoint with request/status counting and, when
// observeLatency is set, service-latency observation.
func (s *Server) instrument(path string, observeLatency bool, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.Request(path, rec.code)
		if observeLatency {
			s.metrics.Observe(time.Since(start))
		}
	}
}

// decodeJSON strictly decodes the request body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := plan.DecodeStrict(r.Body, v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// retryAfterSeconds converts the configured backpressure hint to the
// integral seconds value of a Retry-After header, rounding up and clamping
// to a minimum of 1: a sub-second hint must never be emitted as "0", which
// clients read as "retry immediately" — the opposite of backpressure.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
		return false
	}
	return true
}

// execute runs one canonicalized job through the shared serving path:
// cache lookup first (the zero-cost fast path — a hit never touches the
// queue), then bounded admission with backpressure, then waiting under the
// per-request deadline. It is the common core of the single-request
// endpoints and the /v1/batch items.
func (s *Server) execute(ctx context.Context, key, kind string, run func() ([]byte, error)) (body []byte, cached bool, err error) {
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		return body, true, nil
	}
	s.metrics.cacheMisses.Add(1)

	jctx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	job := newJob(jctx, key, kind, run)
	body, err = s.submit(jctx, job)
	return body, false, err
}

// executeStatus maps an execute error to the per-item/request HTTP status
// and message, bumping the matching stall counters.
func (s *Server) executeStatus(kind string, err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.metrics.queueFull.Add(1)
		return http.StatusTooManyRequests, fmt.Sprintf("job queue full (depth %d); retry later", s.queue.Cap())
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, "server is shutting down"
	case errors.Is(err, ErrPreempted):
		return http.StatusServiceUnavailable, "job checkpointed and preempted by shutdown; retry after restart"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, fmt.Sprintf("request deadline (%s) exceeded while %s", s.opts.Timeout, kind)
	default:
		return http.StatusInternalServerError, fmt.Sprintf("%s failed: %v", kind, err)
	}
}

// serveJob is the HTTP wrapper of execute for the two single-request POST
// endpoints.
func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, key, kind string, run func() ([]byte, error)) {
	body, cached, err := s.execute(r.Context(), key, kind, run)
	if err == nil {
		state := "MISS"
		if cached {
			state = "HIT"
		}
		writeResult(w, key, state, body)
		return
	}
	code, msg := s.executeStatus(kind, err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	}
	writeError(w, code, "%s", msg)
}

func writeResult(w http.ResponseWriter, key, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("X-Cache-Key", key)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

func (s *Server) handleCollect(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/collect", true, func(w http.ResponseWriter, r *http.Request) {
		if !requirePost(w, r) {
			return
		}
		var req hwgc.CollectRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		key, err := req.Key() // canonicalizes in place
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		if s.opts.MaxScale > 0 && req.Scale > s.opts.MaxScale {
			writeError(w, http.StatusBadRequest, "scale %d exceeds server limit %d", req.Scale, s.opts.MaxScale)
			return
		}
		s.serveJob(w, r, key, "collect", func() ([]byte, error) { return s.runCollect(req) })
	})(w, r)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/sweep", true, func(w http.ResponseWriter, r *http.Request) {
		if !requirePost(w, r) {
			return
		}
		var req hwgc.SweepRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		key, err := req.Key() // canonicalizes in place
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		if s.opts.MaxScale > 0 && req.Scale > s.opts.MaxScale {
			writeError(w, http.StatusBadRequest, "scale %d exceeds server limit %d", req.Scale, s.opts.MaxScale)
			return
		}
		s.serveJob(w, r, key, "sweep", func() ([]byte, error) { return s.runSweep(req) })
	})(w, r)
}

// workloadsBody is the GET /v1/workloads response.
type workloadsBody struct {
	Workloads  []string
	Baselines  []string
	CoreRange  [2]int
	PaperCores []int
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/workloads", false, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "%s requires GET", r.URL.Path)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(workloadsBody{
			Workloads:  hwgc.Workloads(),
			Baselines:  hwgc.Baselines(),
			CoreRange:  [2]int{1, 64},
			PaperCores: hwgc.PaperCoreCounts,
		})
	})(w, r)
}

// healthBody is the GET /healthz response.
type healthBody struct {
	Status     string
	Workers    int
	QueueDepth int
	QueueCap   int
	CacheLen   int
	// JobsQueued is the async job backlog across all classes (0 when the
	// job tier is disabled).
	JobsQueued int
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.instrument("/healthz", false, func(w http.ResponseWriter, r *http.Request) {
		body := healthBody{
			Status:     "ok",
			Workers:    s.opts.Workers,
			QueueDepth: s.queue.Depth(),
			QueueCap:   s.queue.Cap(),
			CacheLen:   s.cache.Len(),
		}
		if s.jobs != nil {
			body.JobsQueued = s.jobs.Backlog()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(body)
	})(w, r)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.instrument("/metrics", false, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WritePrometheus(w, s.queue, s.cache)
		if s.jobs != nil {
			_ = s.jobs.WriteMetrics(w)
		}
		if s.sweeps != nil {
			_ = s.sweeps.WriteMetrics(w)
		}
	})(w, r)
}
