package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hwgc"
	"hwgc/internal/jobs"
	"hwgc/internal/plan"
)

// jobSubmitBody is the POST /v1/jobs request: exactly one of Collect or
// Sweep, plus an optional priority class (default: the first configured
// class).
type jobSubmitBody struct {
	Collect *hwgc.CollectRequest `json:",omitempty"`
	Sweep   *hwgc.SweepRequest   `json:",omitempty"`
	Class   string               `json:",omitempty"`
}

// writeJobInfo serves a job Info snapshot as indented JSON.
func writeJobInfo(w http.ResponseWriter, code int, info jobs.Info) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

// jobListBody is the GET /v1/jobs response.
type jobListBody struct {
	Jobs []jobs.Info
}

// handleJobs serves POST /v1/jobs (canonicalize, content-address, submit)
// and GET /v1/jobs (list jobs; ?active=true restricts to non-terminal ones,
// which is what the elastic migration driver enumerates after a topology
// change). Submissions are idempotent — resubmitting the same request
// returns the existing job (200) instead of creating a new one (202).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/jobs", false, func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			active := r.URL.Query().Get("active") == "true"
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(jobListBody{Jobs: s.jobs.List(active)})
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "GET, POST")
			writeError(w, http.StatusMethodNotAllowed, "%s requires GET or POST", r.URL.Path)
			return
		}
		var body jobSubmitBody
		if !decodeJSON(w, r, &body) {
			return
		}
		if (body.Collect == nil) == (body.Sweep == nil) {
			writeError(w, http.StatusBadRequest, "exactly one of Collect or Sweep must be set")
			return
		}
		if body.Class != "" && !s.jobs.HasClass(body.Class) {
			writeError(w, http.StatusBadRequest, "unknown job class %q", body.Class)
			return
		}
		var (
			kind      string
			scale     int
			canonical []byte
			err       error
		)
		if body.Collect != nil {
			kind = jobs.KindCollect
			if _, err = body.Collect.Key(); err == nil { // canonicalizes in place
				scale = body.Collect.Scale
				canonical, err = body.Collect.CanonicalJSON()
			}
		} else {
			kind = jobs.KindSweep
			if _, err = body.Sweep.Key(); err == nil { // canonicalizes in place
				scale = body.Sweep.Scale
				canonical, err = body.Sweep.CanonicalJSON()
			}
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		if s.opts.MaxScale > 0 && scale > s.opts.MaxScale {
			writeError(w, http.StatusBadRequest, "scale %d exceeds server limit %d", scale, s.opts.MaxScale)
			return
		}
		info, accepted, err := s.jobs.Submit(kind, body.Class, canonical)
		switch {
		case errors.Is(err, jobs.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, "submitting job: %v", err)
			return
		}
		code := http.StatusOK // deduped onto an existing job
		if accepted {
			code = http.StatusAccepted
		}
		w.Header().Set("Location", "/v1/jobs/"+info.ID)
		writeJobInfo(w, code, info)
	})(w, r)
}

// handleJobByID routes /v1/jobs/{id}, /v1/jobs/{id}/result and
// /v1/jobs/{id}/events. Metric labels stay low-cardinality: the id is never
// part of the label.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || strings.Contains(sub, "/") {
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
		return
	}
	switch sub {
	case "":
		s.instrument("/v1/jobs/{id}", false, func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				s.serveJobInfo(w, id)
			case http.MethodDelete:
				s.serveJobCancel(w, id)
			default:
				w.Header().Set("Allow", "GET, DELETE")
				writeError(w, http.StatusMethodNotAllowed, "%s requires GET or DELETE", r.URL.Path)
			}
		})(w, r)
	case "result":
		s.instrument("/v1/jobs/{id}/result", false, func(w http.ResponseWriter, r *http.Request) {
			if !requireGet(w, r) {
				return
			}
			s.serveJobResult(w, id)
		})(w, r)
	case "events":
		s.instrument("/v1/jobs/{id}/events", false, func(w http.ResponseWriter, r *http.Request) {
			if !requireGet(w, r) {
				return
			}
			s.serveJobEvents(w, r, id)
		})(w, r)
	case "checkpoint":
		s.instrument("/v1/jobs/{id}/checkpoint", false, func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				s.serveJobExport(w, r, id)
			case http.MethodPut:
				s.serveJobImport(w, r, id)
			case http.MethodDelete:
				s.serveJobRelease(w, id)
			default:
				w.Header().Set("Allow", "GET, PUT, DELETE")
				writeError(w, http.StatusMethodNotAllowed, "%s requires GET, PUT or DELETE", r.URL.Path)
			}
		})(w, r)
	default:
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
	}
}

// maxCheckpointBytes bounds a PUT checkpoint body. Machine snapshots are a
// few MiB at the largest supported scale; well beyond that is corruption or
// abuse, not data.
const maxCheckpointBytes = 64 << 20

// exportWaitDefault/-Max bound how long GET /v1/jobs/{id}/checkpoint waits
// for a running job to reach its next snapshot boundary.
const (
	exportWaitDefault = 30 * time.Second
	exportWaitMax     = 2 * time.Minute
)

// importReceipt is the PUT /v1/jobs/{id}/checkpoint response: the adopted
// job's Info plus an echo of the imported position, which the migration
// driver verifies against what it exported before releasing the source.
type importReceipt struct {
	Info     jobs.Info
	Accepted bool // false: deduped onto an existing local job
	Point    int
	Cycle    int64
	SnapCRC  uint32 `json:",omitempty"`
}

// serveJobExport captures the job's current position as a portable envelope
// (GET /v1/jobs/{id}/checkpoint). A running job is preempted at its next
// snapshot boundary first; ?wait= bounds that wait. The export does not
// mutate the job — it keeps running here until DELETE releases it.
func (s *Server) serveJobExport(w http.ResponseWriter, r *http.Request, id string) {
	wait := exportWaitDefault
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "invalid wait %q: want a positive duration", v)
			return
		}
		wait = min(d, exportWaitMax)
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	env, err := s.jobs.Export(ctx, id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such job %q", id)
	case errors.Is(err, jobs.ErrTerminal):
		writeError(w, http.StatusConflict, "job %s is not exportable: %v", id, err)
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.opts.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, "job %s did not reach a checkpoint boundary within %s", id, wait)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "exporting job: %v", err)
	default:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(env)
	}
}

// serveJobImport adopts a foreign checkpoint envelope as a local job
// (PUT /v1/jobs/{id}/checkpoint). Idempotent by content key: importing onto
// an existing job returns 200 with the existing Info; a fresh adoption
// returns 201. Corrupt, truncated or inconsistent envelopes are rejected
// with 400 before any local state changes.
func (s *Server) serveJobImport(w http.ResponseWriter, r *http.Request, id string) {
	r.Body = http.MaxBytesReader(w, r.Body, maxCheckpointBytes)
	var env jobs.ExportedJob
	if err := plan.DecodeStrict(r.Body, &env); err != nil {
		writeError(w, http.StatusBadRequest, "decoding checkpoint: %v", err)
		return
	}
	if env.ID != id {
		writeError(w, http.StatusBadRequest, "envelope ID %s does not match URL job %s", env.ID, id)
		return
	}
	if err := env.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid checkpoint: %v", err)
		return
	}
	info, accepted, err := s.jobs.Import(&env)
	switch {
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "importing checkpoint: %v", err)
		return
	}
	code := http.StatusOK
	if accepted {
		code = http.StatusCreated
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(importReceipt{Info: info, Accepted: accepted, Point: env.Point, Cycle: env.Cycle, SnapCRC: env.SnapCRC})
}

// serveJobRelease finishes a job locally as migrated after its envelope has
// been verifiably imported elsewhere (DELETE /v1/jobs/{id}/checkpoint).
// Idempotent for already-migrated jobs; other terminal states are 409.
func (s *Server) serveJobRelease(w http.ResponseWriter, id string) {
	info, err := s.jobs.Release(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such job %q", id)
	case errors.Is(err, jobs.ErrTerminal):
		writeError(w, http.StatusConflict, "job %s is already %s", id, info.State)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "releasing job: %v", err)
	default:
		writeJobInfo(w, http.StatusOK, info)
	}
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "%s requires GET", r.URL.Path)
		return false
	}
	return true
}

func (s *Server) serveJobInfo(w http.ResponseWriter, id string) {
	info, err := s.jobs.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJobInfo(w, http.StatusOK, info)
}

func (s *Server) serveJobCancel(w http.ResponseWriter, id string) {
	info, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such job %q", id)
	case errors.Is(err, jobs.ErrTerminal):
		// Cancel raced completion: the job already reached a final state,
		// which the 409 body reports so the client can fetch the result.
		writeError(w, http.StatusConflict, "job %s is already %s", id, info.State)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "cancelling job: %v", err)
	default:
		writeJobInfo(w, http.StatusOK, info)
	}
}

// serveJobResult maps job states to result availability: done streams the
// body, failed is the job's error (502 to distinguish job failure from
// server failure), cancelled is gone, everything else is "not yet" (202
// with the current Info, plus a Retry-After hint).
func (s *Server) serveJobResult(w http.ResponseWriter, id string) {
	body, info, err := s.jobs.Result(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such job %q", id)
	case err == nil:
		writeResult(w, id, "JOB", body)
	case info.State == jobs.StateFailed:
		writeError(w, http.StatusBadGateway, "job failed: %s", info.Error)
	case info.State == jobs.StateCancelled:
		writeError(w, http.StatusGone, "job %s was cancelled", id)
	case info.State == jobs.StateMigrated:
		// The fleet tier re-routes by content key; a direct client re-submits.
		writeError(w, http.StatusGone, "job %s migrated to another backend", id)
	default:
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.opts.RetryAfter)))
		writeJobInfo(w, http.StatusAccepted, info)
	}
}

// serveJobEvents streams a job's lifecycle as Server-Sent Events: the
// replayable history first, then live transitions until the job reaches a
// terminal state or the client disconnects. Every event carries its Seq as
// the SSE id, the State as the event name, and the Event JSON as data. A
// reconnecting client resumes from its Last-Event-ID instead of replaying
// from zero.
func (s *Server) serveJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	history, live, stop, err := s.jobs.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	defer stop()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	resumeFrom := lastEventID(r)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// write emits one event and reports whether the stream is over (a
	// terminal state, or a dead connection).
	write := func(ev jobs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.State, data); err != nil {
			return true
		}
		fl.Flush()
		return ev.State.Terminal()
	}
	for _, ev := range history {
		if ev.Seq <= resumeFrom {
			continue
		}
		if write(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok || write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.draining:
			// Shutdown closes the stream; the history is replayable after
			// restart, so the client reconnects and misses nothing.
			return
		}
	}
}
