package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hwgc/internal/jobs"
)

// jobsOpts returns server options with the async job tier mounted on a
// fresh temp directory.
func jobsOpts(t *testing.T) Options {
	t.Helper()
	return Options{Workers: 1, JobsDir: t.TempDir(), JobRunners: 1}
}

// postJob submits a job body and decodes the Info response.
func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, jobs.Info) {
	t.Helper()
	resp, data := post(t, ts, "/v1/jobs", body)
	var info jobs.Info
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatalf("decoding job info: %v: %s", err, data)
		}
	}
	return resp, info
}

// awaitResult polls GET /v1/jobs/{id}/result until it stops answering 202.
func awaitResult(t *testing.T, ts *httptest.Server, id string) (*http.Response, []byte) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, data := get(t, ts, "/v1/jobs/"+id+"/result")
		if resp.StatusCode != http.StatusAccepted {
			return resp, data
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still not done: %s", id, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsEndpointLifecycle submits an async collect job over HTTP and
// checks the whole surface: 202 + Location on submit, 200 dedup on
// resubmit, status polling, and a final result byte-identical to the
// synchronous /v1/collect path for the same request.
func TestJobsEndpointLifecycle(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	const req = `{"Bench":"jlisp","Config":{"Cores":2}}`

	resp, info := postJob(t, ts, `{"Collect":`+req+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if info.ID == "" || info.Kind != jobs.KindCollect || info.State.Terminal() {
		t.Fatalf("submit info = %+v", info)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+info.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Resubmission dedupes onto the same job: 200, same ID.
	resp2, info2 := postJob(t, ts, `{"Collect":`+req+`}`)
	if resp2.StatusCode != http.StatusOK || info2.ID != info.ID {
		t.Fatalf("resubmit: status %d id %s, want 200 + %s", resp2.StatusCode, info2.ID, info.ID)
	}

	// Status endpoint serves the Info.
	respS, dataS := get(t, ts, "/v1/jobs/"+info.ID)
	if respS.StatusCode != http.StatusOK || !bytes.Contains(dataS, []byte(info.ID)) {
		t.Fatalf("status: %d %s", respS.StatusCode, dataS)
	}

	respR, got := awaitResult(t, ts, info.ID)
	if respR.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d: %s", respR.StatusCode, got)
	}
	if respR.Header.Get("X-Cache-Key") != info.ID {
		t.Fatalf("X-Cache-Key = %q, want job id", respR.Header.Get("X-Cache-Key"))
	}
	respSync, want := post(t, ts, "/v1/collect", req)
	if respSync.StatusCode != http.StatusOK {
		t.Fatalf("sync status = %d", respSync.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("async result differs from synchronous path")
	}
	// The job result fed the cache, so the sync request above was a hit.
	if respSync.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("sync X-Cache = %q, want HIT from job result", respSync.Header.Get("X-Cache"))
	}
}

func TestJobsEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	for name, body := range map[string]string{
		"neither":       `{}`,
		"both":          `{"Collect":{"Bench":"jlisp","Config":{}},"Sweep":{"Bench":"jlisp","Cores":[1],"Config":{}}}`,
		"unknown class": `{"Collect":{"Bench":"jlisp","Config":{}},"Class":"nope"}`,
		"bad request":   `{"Collect":{"Config":{}}}`,
		"not json":      `walrus`,
	} {
		resp, data := post(t, ts, "/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, data)
		}
	}
	// Unknown job resources.
	for _, path := range []string{"/v1/jobs/absent", "/v1/jobs/absent/result", "/v1/jobs/absent/events", "/v1/jobs/x/y/z"} {
		if resp, _ := get(t, ts, path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	// GET on the collection endpoint lists jobs (empty table here).
	if resp, data := get(t, ts, "/v1/jobs"); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/jobs: status %d (%s), want 200", resp.StatusCode, data)
	}
	// Other methods on the collection endpoint are method errors.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs: status %d, want 405", resp.StatusCode)
	}
}

// TestJobsEndpointCancel cancels a queued job over HTTP: DELETE answers
// with the cancelled Info, the result endpoint reports 410, and a second
// DELETE is a 409 conflict.
func TestJobsEndpointCancel(t *testing.T) {
	opts := jobsOpts(t)
	opts.JobRunners = 1
	s, ts := newTestServer(t, opts)

	// Wedge the single runner with a scaled-up sweep so the next job stays
	// queued; same class as the victim, so no preemption interferes.
	_, long := postJob(t, ts, `{"Sweep":{"Bench":"search","Scale":8,"Cores":[8,16],"Config":{}}}`)
	waitJobState(t, s, long.ID, jobs.StateRunning)

	_, victim := postJob(t, ts, `{"Collect":{"Bench":"jlisp","Seed":5,"Config":{}}}`)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var info jobs.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.State != jobs.StateCancelled {
		t.Fatalf("cancel: status %d state %s", resp.StatusCode, info.State)
	}

	if respR, _ := get(t, ts, "/v1/jobs/"+victim.ID+"/result"); respR.StatusCode != http.StatusGone {
		t.Fatalf("result of cancelled job: status %d, want 410", respR.StatusCode)
	}
	resp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", resp2.StatusCode)
	}
}

// waitJobState polls the manager until the job reaches state.
func waitJobState(t *testing.T, s *Server, id string, state jobs.State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, err := s.jobs.Get(id)
		if err == nil && info.State == state {
			return
		}
		if err == nil && info.State.Terminal() && !state.Terminal() {
			t.Fatalf("job %s reached terminal %s waiting for %s (err %q)", id, info.State, state, info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s", id, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobsEventsSSE reads the Server-Sent-Events stream end to end: it must
// frame every lifecycle event with id/event/data lines and close after the
// terminal event.
func TestJobsEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	_, info := postJob(t, ts, `{"Collect":{"Bench":"jlisp","Seed":9,"Config":{}}}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var states []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			states = append(states, strings.TrimPrefix(line, "event: "))
		}
	}
	// The stream ends at the terminal event, so Scan terminating (EOF) is
	// the success condition; the state sequence must start queued and end
	// done.
	if len(states) < 2 || states[0] != string(jobs.StateQueued) || states[len(states)-1] != string(jobs.StateDone) {
		t.Fatalf("SSE states = %v", states)
	}
}

// TestJobsHealthAndMetrics checks the job tier's observability surface:
// /healthz reports the backlog and /metrics carries the gcjobs_ series next
// to the gcserved_ ones.
func TestJobsHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	_, info := postJob(t, ts, `{"Collect":{"Bench":"jlisp","Seed":3,"Config":{}}}`)
	awaitResult(t, ts, info.ID)

	respH, bodyH := get(t, ts, "/healthz")
	if respH.StatusCode != http.StatusOK || !bytes.Contains(bodyH, []byte("JobsQueued")) {
		t.Fatalf("healthz: %d %s", respH.StatusCode, bodyH)
	}
	_, bodyM := get(t, ts, "/metrics")
	for _, want := range []string{
		"gcserved_requests_total",
		"gcjobs_submitted_total 1",
		"gcjobs_completed_total 1",
		`gcjobs_queue_depth{class="batch"} 0`,
		"gcjobs_wal_replays_total 1",
	} {
		if !bytes.Contains(bodyM, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobsSubmitAfterShutdown checks drain semantics at the HTTP layer:
// once Shutdown begins, job submissions get 503.
func TestJobsSubmitAfterShutdown(t *testing.T) {
	s, err := New(jobsOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := post(t, ts, "/v1/jobs", `{"Collect":{"Bench":"jlisp","Config":{}}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d, want 503", resp.StatusCode)
	}
}

// TestOptionsDefaultNormalization is the satellite regression: negative
// cache bounds must normalize to the defaults exactly like zero values do
// for every other knob — a sign error must not disable the cache.
func TestOptionsDefaultNormalization(t *testing.T) {
	d := Options{CacheEntries: -1, CacheBytes: -5, Workers: -2, QueueDepth: -3, JobRunners: -4}.withDefaults()
	if d.CacheEntries != 1024 {
		t.Errorf("CacheEntries = %d, want 1024", d.CacheEntries)
	}
	if d.CacheBytes != 64<<20 {
		t.Errorf("CacheBytes = %d, want %d", d.CacheBytes, 64<<20)
	}
	if d.Workers <= 0 || d.QueueDepth != 64 || d.JobRunners != 2 {
		t.Errorf("other defaults regressed: %+v", d)
	}
	z := Options{}.withDefaults()
	if z.CacheEntries != 1024 || z.CacheBytes != 64<<20 || z.JobRunners != 2 {
		t.Errorf("zero-value defaults: %+v", z)
	}
}
