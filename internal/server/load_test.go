package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hwgc"
)

// TestLoadBackpressureBoundedAndCacheIdentity is the subsystem's load test,
// meant to run under the race detector (CI uses go test -race): 200+
// concurrent requests against a deliberately small queue, real simulations,
// asserting that
//
//   - the only outcomes are 200 and deliberate 429 backpressure,
//   - the bounded queue and the bounded cache never exceed their limits
//     (bounded memory), and
//   - repeated requests are served from the cache byte-identically.
func TestLoadBackpressureBoundedAndCacheIdentity(t *testing.T) {
	opts := Options{
		Workers:      4,
		QueueDepth:   8,
		CacheEntries: 64,
		CacheBytes:   8 << 20,
		Timeout:      60 * time.Second,
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Real simulations, slowed enough that service time dominates request
	// arrival jitter — otherwise the workers drain the queue faster than
	// the client can fill it and backpressure never engages.
	realRun := s.runCollect
	s.runCollect = func(req hwgc.CollectRequest) ([]byte, error) {
		time.Sleep(10 * time.Millisecond)
		return realRun(req)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 256}
	doPost := func(seed int) (int, []byte) {
		body := fmt.Sprintf(`{"Bench":"jlisp","Seed":%d,"Config":{"Cores":2}}`, seed)
		resp, err := client.Post(ts.URL+"/v1/collect", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		return resp.StatusCode, data
	}

	// Phase A — backpressure: 200 concurrent requests with 200 distinct
	// seeds (every one a cache miss) against a queue of 8 over 4 workers.
	const stormN = 200
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[int]int{}
		maxDepth int
	)
	release := make(chan struct{}) // start barrier: fire all at once
	for i := 0; i < stormN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			code, _ := doPost(1000 + i)
			d := s.queue.Depth()
			mu.Lock()
			statuses[code]++
			if d > maxDepth {
				maxDepth = d
			}
			mu.Unlock()
		}(i)
	}
	close(release)
	wg.Wait()

	if statuses[http.StatusOK]+statuses[http.StatusTooManyRequests] != stormN {
		t.Fatalf("outcomes other than 200/429 under load: %v", statuses)
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("nothing succeeded under load: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no backpressure despite 200 concurrent misses on a depth-8 queue: %v", statuses)
	}
	if maxDepth > opts.QueueDepth {
		t.Fatalf("queue depth %d exceeded its bound %d", maxDepth, opts.QueueDepth)
	}
	if got := s.cache.Len(); got > opts.CacheEntries {
		t.Fatalf("cache holds %d entries, bound %d", got, opts.CacheEntries)
	}
	if got := s.cache.Bytes(); got > opts.CacheBytes {
		t.Fatalf("cache holds %d bytes, bound %d", got, opts.CacheBytes)
	}
	if got := s.metrics.queueFull.Load(); got != int64(statuses[http.StatusTooManyRequests]) {
		t.Fatalf("queue_full_total %d != %d observed 429s", got, statuses[http.StatusTooManyRequests])
	}

	// Phase B — cache identity: warm 4 variants, then 200 concurrent
	// repeats across them must all hit the cache byte-identically.
	warm := make(map[int][]byte, 4)
	for v := 0; v < 4; v++ {
		code, body := doPost(v + 1)
		if code != http.StatusOK {
			t.Fatalf("warm request %d: status %d", v, code)
		}
		warm[v] = body
	}
	hitsBefore := s.metrics.cacheHits.Load()
	var identityErrs sync.Map
	for i := 0; i < stormN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := i % 4
			code, body := doPost(v + 1)
			if code != http.StatusOK {
				identityErrs.Store(fmt.Sprintf("req %d status %d", i, code), true)
				return
			}
			if !bytes.Equal(body, warm[v]) {
				identityErrs.Store(fmt.Sprintf("req %d variant %d not byte-identical", i, v), true)
			}
		}(i)
	}
	wg.Wait()
	identityErrs.Range(func(k, _ any) bool {
		t.Error(k)
		return true
	})
	if got := s.metrics.cacheHits.Load() - hitsBefore; got != stormN {
		t.Fatalf("cache hits during repeat storm: %d, want %d", got, stormN)
	}

	// Drain cleanly; every admitted job must complete.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after load: %v", err)
	}
	if started, done := s.metrics.jobsStarted.Load(), s.metrics.jobsDone.Load(); started != done {
		t.Fatalf("jobs started %d != done %d after drain", started, done)
	}
}
