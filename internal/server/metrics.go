package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hwgc"
	"hwgc/internal/stats"
)

// Metrics is the server's hand-rolled counter set, exposed on /metrics in
// Prometheus text exposition format. In the spirit of the paper's stall
// accounting — every cycle a core cannot make progress is attributed to a
// cause — every request the server cannot serve immediately is attributed
// to one: queue full (rejections), queue wait + service time (latency
// histogram), or deadline expiry (timeouts).
type Metrics struct {
	start time.Time

	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	queueFull    atomic.Int64
	timeouts     atomic.Int64
	jobsStarted  atomic.Int64
	jobsDone     atomic.Int64
	jobsSkipped  atomic.Int64 // jobs whose context expired before a worker picked them up
	inflightJobs atomic.Int64
	batchItems   atomic.Int64 // batch items executed (any outcome)
	batchFailed  atomic.Int64 // batch items that did not end 200

	checkpointsSaved     atomic.Int64 // simulation snapshots persisted to disk
	checkpointsResumed   atomic.Int64 // jobs resumed from an on-disk checkpoint
	jobsPreempted        atomic.Int64 // jobs stopped at a checkpoint for shutdown
	recoveriesEnqueued   atomic.Int64 // orphaned checkpoints enqueued at startup
	checkpointsReclaimed atomic.Int64 // unreadable/stale checkpoint files garbage-collected

	// Concurrent-collection scenario counters, aggregated from every
	// collect response whose config ran the built-in mutator.
	barrierInvocations atomic.Int64
	barrierCycles      atomic.Int64
	floatingWords      atomic.Int64

	// Memory-hierarchy counters, aggregated from every collect response
	// whose config enabled the NUMA or cache model.
	numaLocal     atomic.Int64
	numaRemote    atomic.Int64
	numaConflicts atomic.Int64
	cacheL1Hits   atomic.Int64
	cacheL2Hits   atomic.Int64
	cacheMissesGC atomic.Int64 // L2 misses (requests that went to DRAM)
	cacheMSHRFull atomic.Int64

	mu       sync.Mutex
	requests map[string]int64 // by path
	statuses map[int]int64    // by HTTP status code
	concRuns map[string]int64 // concurrent collections, by barrier mode
	numaRuns map[string]int64 // NUMA collections, by tospace placement
	lat      stats.Hist
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		requests: make(map[string]int64),
		statuses: make(map[int]int64),
		concRuns: make(map[string]int64),
		numaRuns: make(map[string]int64),
	}
}

// ObserveCollect aggregates the concurrent-collection and memory-hierarchy
// counters of one completed collect response. Responses whose config ran
// neither the mutator nor a hierarchy model are a no-op, as is a nil
// receiver (tests that stub the runner).
func (m *Metrics) ObserveCollect(resp *hwgc.CollectResponse) {
	if m == nil || resp == nil {
		return
	}
	st := &resp.Result.Stats
	if ms := st.Mutator; ms != nil {
		mode := "none"
		if bm := st.Config.BarrierMode; bm != hwgc.BarrierNone {
			mode = string(bm)
		}
		m.mu.Lock()
		m.concRuns[mode]++
		m.mu.Unlock()
		m.barrierInvocations.Add(ms.BarrierInvocations)
		m.barrierCycles.Add(ms.BarrierCycles)
		m.floatingWords.Add(ms.FloatingWords)
	}
	if st.Config.NUMADomains > 0 {
		placement := "naive"
		if st.Config.NUMAPlacement == hwgc.PlacementLocal {
			placement = "local"
		}
		m.mu.Lock()
		m.numaRuns[placement]++
		m.mu.Unlock()
		m.numaLocal.Add(st.Mem.LocalAccesses)
		m.numaRemote.Add(st.Mem.RemoteAccesses)
		m.numaConflicts.Add(st.Mem.DomainConflicts)
	}
	if st.Config.L1Sets > 0 {
		m.cacheL1Hits.Add(st.Mem.L1Hits)
		m.cacheL2Hits.Add(st.Mem.L2Hits)
		m.cacheMissesGC.Add(st.Mem.L2Misses)
		m.cacheMSHRFull.Add(st.Mem.MSHRFullStalls)
	}
}

// Request records one HTTP request against path with the final status code.
func (m *Metrics) Request(path string, code int) {
	m.mu.Lock()
	m.requests[path]++
	m.statuses[code]++
	m.mu.Unlock()
}

// Observe records the service latency of one job endpoint request (cache
// hits included: they are the zero-cost fast path and belong in the
// distribution).
func (m *Metrics) Observe(d time.Duration) {
	m.mu.Lock()
	m.lat.Observe(d)
	m.mu.Unlock()
}

// queueState is what WritePrometheus needs from the job queue; the server
// passes its live queue so depth is sampled at scrape time.
type queueState interface {
	Depth() int
	Cap() int
}

// cacheState is the cache's contribution to the scrape.
type cacheState interface {
	Len() int
	Bytes() int64
}

// WritePrometheus writes every counter in Prometheus text exposition
// format. Map-keyed series are emitted in sorted order so the output is
// deterministic.
func (m *Metrics) WritePrometheus(w io.Writer, q queueState, c cacheState) error {
	m.mu.Lock()
	paths := make([]string, 0, len(m.requests))
	for p := range m.requests {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	codes := make([]int, 0, len(m.statuses))
	for s := range m.statuses {
		codes = append(codes, s)
	}
	sort.Ints(codes)
	reqLines := make([]string, 0, len(paths)+len(codes))
	for _, p := range paths {
		reqLines = append(reqLines, fmt.Sprintf("gcserved_requests_total{path=%q} %d", p, m.requests[p]))
	}
	for _, s := range codes {
		reqLines = append(reqLines, fmt.Sprintf("gcserved_responses_total{code=\"%d\"} %d", s, m.statuses[s]))
	}
	modes := make([]string, 0, len(m.concRuns))
	for mode := range m.concRuns {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	concLines := make([]string, 0, len(modes))
	for _, mode := range modes {
		concLines = append(concLines, fmt.Sprintf("gcserved_concurrent_collections_total{barrier=%q} %d", mode, m.concRuns[mode]))
	}
	placements := make([]string, 0, len(m.numaRuns))
	for p := range m.numaRuns {
		placements = append(placements, p)
	}
	sort.Strings(placements)
	numaLines := make([]string, 0, len(placements))
	for _, p := range placements {
		numaLines = append(numaLines, fmt.Sprintf("gcserved_numa_collections_total{placement=%q} %d", p, m.numaRuns[p]))
	}
	lat := m.lat
	m.mu.Unlock()

	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
		b = append(b, '\n')
	}
	add("# HELP gcserved_requests_total HTTP requests received, by path.")
	add("# TYPE gcserved_requests_total counter")
	add("# HELP gcserved_responses_total HTTP responses sent, by status code.")
	add("# TYPE gcserved_responses_total counter")
	for _, l := range reqLines {
		add("%s", l)
	}
	add("# HELP gcserved_cache_hits_total Result-cache hits (fast path, no simulation run).")
	add("# TYPE gcserved_cache_hits_total counter")
	add("gcserved_cache_hits_total %d", m.cacheHits.Load())
	add("# HELP gcserved_cache_misses_total Result-cache misses.")
	add("# TYPE gcserved_cache_misses_total counter")
	add("gcserved_cache_misses_total %d", m.cacheMisses.Load())
	add("# HELP gcserved_cache_entries Cached responses currently held.")
	add("# TYPE gcserved_cache_entries gauge")
	add("gcserved_cache_entries %d", c.Len())
	add("# HELP gcserved_cache_bytes Bytes of cached response bodies currently held.")
	add("# TYPE gcserved_cache_bytes gauge")
	add("gcserved_cache_bytes %d", c.Bytes())
	add("# HELP gcserved_queue_depth Jobs waiting in the bounded queue.")
	add("# TYPE gcserved_queue_depth gauge")
	add("gcserved_queue_depth %d", q.Depth())
	add("# HELP gcserved_queue_capacity Capacity of the bounded job queue.")
	add("# TYPE gcserved_queue_capacity gauge")
	add("gcserved_queue_capacity %d", q.Cap())
	add("# HELP gcserved_queue_full_total Requests rejected with 429 because the queue was full.")
	add("# TYPE gcserved_queue_full_total counter")
	add("gcserved_queue_full_total %d", m.queueFull.Load())
	add("# HELP gcserved_timeouts_total Requests that hit their deadline before a result was ready.")
	add("# TYPE gcserved_timeouts_total counter")
	add("gcserved_timeouts_total %d", m.timeouts.Load())
	add("# HELP gcserved_jobs_inflight Jobs currently executing on the worker pool.")
	add("# TYPE gcserved_jobs_inflight gauge")
	add("gcserved_jobs_inflight %d", m.inflightJobs.Load())
	add("# HELP gcserved_jobs_started_total Jobs a worker began executing.")
	add("# TYPE gcserved_jobs_started_total counter")
	add("gcserved_jobs_started_total %d", m.jobsStarted.Load())
	add("# HELP gcserved_jobs_done_total Jobs that finished executing.")
	add("# TYPE gcserved_jobs_done_total counter")
	add("gcserved_jobs_done_total %d", m.jobsDone.Load())
	add("# HELP gcserved_jobs_skipped_total Queued jobs skipped because their deadline expired first.")
	add("# TYPE gcserved_jobs_skipped_total counter")
	add("gcserved_jobs_skipped_total %d", m.jobsSkipped.Load())
	add("# HELP gcserved_batch_items_total Batch items executed via /v1/batch.")
	add("# TYPE gcserved_batch_items_total counter")
	add("gcserved_batch_items_total %d", m.batchItems.Load())
	add("# HELP gcserved_batch_item_failures_total Batch items that did not complete with status 200.")
	add("# TYPE gcserved_batch_item_failures_total counter")
	add("gcserved_batch_item_failures_total %d", m.batchFailed.Load())
	add("# HELP gcserved_checkpoints_saved_total Simulation snapshots persisted to the checkpoint directory.")
	add("# TYPE gcserved_checkpoints_saved_total counter")
	add("gcserved_checkpoints_saved_total %d", m.checkpointsSaved.Load())
	add("# HELP gcserved_checkpoints_resumed_total Collect jobs resumed from an on-disk checkpoint.")
	add("# TYPE gcserved_checkpoints_resumed_total counter")
	add("gcserved_checkpoints_resumed_total %d", m.checkpointsResumed.Load())
	add("# HELP gcserved_jobs_preempted_total Collect jobs checkpointed and stopped because the server was draining.")
	add("# TYPE gcserved_jobs_preempted_total counter")
	add("gcserved_jobs_preempted_total %d", m.jobsPreempted.Load())
	add("# HELP gcserved_recoveries_enqueued_total Orphaned checkpoints enqueued for background completion at startup.")
	add("# TYPE gcserved_recoveries_enqueued_total counter")
	add("gcserved_recoveries_enqueued_total %d", m.recoveriesEnqueued.Load())
	add("# HELP gcserved_checkpoint_files_reclaimed_total Unreadable, stale or leftover checkpoint files deleted by the startup and resume sweeps.")
	add("# TYPE gcserved_checkpoint_files_reclaimed_total counter")
	add("gcserved_checkpoint_files_reclaimed_total %d", m.checkpointsReclaimed.Load())
	add("# HELP gcserved_concurrent_collections_total Collect responses produced with the built-in concurrent mutator, by write-barrier mode.")
	add("# TYPE gcserved_concurrent_collections_total counter")
	for _, l := range concLines {
		add("%s", l)
	}
	add("# HELP gcserved_barrier_invocations_total Write-barrier invocations across all served concurrent collections.")
	add("# TYPE gcserved_barrier_invocations_total counter")
	add("gcserved_barrier_invocations_total %d", m.barrierInvocations.Load())
	add("# HELP gcserved_barrier_cycles_total Mutator cycles spent inside the write barrier across all served concurrent collections.")
	add("# TYPE gcserved_barrier_cycles_total counter")
	add("gcserved_barrier_cycles_total %d", m.barrierCycles.Load())
	add("# HELP gcserved_floating_garbage_words_total Words of floating garbage retained by barrier shading across all served concurrent collections.")
	add("# TYPE gcserved_floating_garbage_words_total counter")
	add("gcserved_floating_garbage_words_total %d", m.floatingWords.Load())
	add("# HELP gcserved_numa_collections_total Collect responses produced with the NUMA model enabled, by tospace placement.")
	add("# TYPE gcserved_numa_collections_total counter")
	for _, l := range numaLines {
		add("%s", l)
	}
	add("# HELP gcserved_numa_local_accesses_total DRAM acceptances served by the requesting core's own domain across all served NUMA collections.")
	add("# TYPE gcserved_numa_local_accesses_total counter")
	add("gcserved_numa_local_accesses_total %d", m.numaLocal.Load())
	add("# HELP gcserved_numa_remote_accesses_total DRAM acceptances that crossed a domain boundary across all served NUMA collections.")
	add("# TYPE gcserved_numa_remote_accesses_total counter")
	add("gcserved_numa_remote_accesses_total %d", m.numaRemote.Load())
	add("# HELP gcserved_numa_domain_conflicts_total Acceptances deferred by an exhausted per-domain budget across all served NUMA collections.")
	add("# TYPE gcserved_numa_domain_conflicts_total counter")
	add("gcserved_numa_domain_conflicts_total %d", m.numaConflicts.Load())
	add("# HELP gcserved_gc_cache_l1_hits_total GC-side L1 hits across all served collections with the cache model enabled.")
	add("# TYPE gcserved_gc_cache_l1_hits_total counter")
	add("gcserved_gc_cache_l1_hits_total %d", m.cacheL1Hits.Load())
	add("# HELP gcserved_gc_cache_l2_hits_total GC-side shared-L2 hits across all served collections with the cache model enabled.")
	add("# TYPE gcserved_gc_cache_l2_hits_total counter")
	add("gcserved_gc_cache_l2_hits_total %d", m.cacheL2Hits.Load())
	add("# HELP gcserved_gc_cache_misses_total GC-side loads that missed both levels and went to DRAM across all served collections with the cache model enabled.")
	add("# TYPE gcserved_gc_cache_misses_total counter")
	add("gcserved_gc_cache_misses_total %d", m.cacheMissesGC.Load())
	add("# HELP gcserved_gc_cache_mshr_full_stalls_total Load issues rejected because every MSHR was busy across all served collections with the cache model enabled.")
	add("# TYPE gcserved_gc_cache_mshr_full_stalls_total counter")
	add("gcserved_gc_cache_mshr_full_stalls_total %d", m.cacheMSHRFull.Load())
	add("# HELP gcserved_request_seconds Service latency of job endpoints (upper-bound quantile estimates).")
	add("# TYPE gcserved_request_seconds summary")
	add("gcserved_request_seconds{quantile=\"0.5\"} %g", lat.Quantile(0.50))
	add("gcserved_request_seconds{quantile=\"0.95\"} %g", lat.Quantile(0.95))
	add("gcserved_request_seconds{quantile=\"0.99\"} %g", lat.Quantile(0.99))
	add("gcserved_request_seconds_sum %g", lat.Sum().Seconds())
	add("gcserved_request_seconds_count %d", lat.Count())
	add("# HELP gcserved_uptime_seconds Seconds since the server started.")
	add("# TYPE gcserved_uptime_seconds gauge")
	add("gcserved_uptime_seconds %g", time.Since(m.start).Seconds())
	_, err := w.Write(b)
	return err
}
