package server

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hwgc"
	"hwgc/internal/jobs"
)

// checkpointReq performs a bodyful request against the checkpoint endpoint.
func checkpointReq(t *testing.T, ts *httptest.Server, method, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestCheckpointMigrationOverHTTP is the wire-level migration path between
// two real servers: export a live job from the source, import the envelope
// bytes verbatim on the destination, finish it there byte-identical to an
// uninterrupted synchronous run, then release the source as migrated.
func TestCheckpointMigrationOverHTTP(t *testing.T) {
	// Frequent snapshot boundaries so the export preempt lands quickly.
	_, tsSrc := newTestServer(t, Options{
		Workers: 1, JobsDir: t.TempDir(), JobRunners: 1, CheckpointCycles: 500,
	})
	_, tsDst := newTestServer(t, jobsOpts(t))
	_, tsRef := newTestServer(t, Options{Workers: 1})

	const sweepReq = `{"Bench":"jlisp","Cores":[8,4,2,1],"Config":{}}`
	resp, info := postJob(t, tsSrc, `{"Sweep":`+sweepReq+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := info.ID

	// Export: preempts the job at its next snapshot boundary and returns a
	// portable envelope, while the source keeps running the job.
	eresp, raw := get(t, tsSrc, "/v1/jobs/"+id+"/checkpoint?wait=30s")
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d: %s", eresp.StatusCode, raw)
	}
	var env jobs.ExportedJob
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("export envelope undecodable: %v", err)
	}
	if env.ID != id || env.State.Terminal() {
		t.Fatalf("export envelope: id=%s state=%s", env.ID, env.State)
	}
	if err := env.Validate(); err != nil {
		t.Fatalf("exported envelope fails validation: %v", err)
	}

	// Import the bytes verbatim on the destination: 201 with a receipt that
	// echoes the imported position for the driver's pre-release check.
	iresp, rbody := checkpointReq(t, tsDst, http.MethodPut, "/v1/jobs/"+id+"/checkpoint", raw)
	if iresp.StatusCode != http.StatusCreated {
		t.Fatalf("import status = %d: %s", iresp.StatusCode, rbody)
	}
	var receipt struct {
		Info     jobs.Info
		Accepted bool
		Point    int
		Cycle    int64
		SnapCRC  uint32
	}
	if err := json.Unmarshal(rbody, &receipt); err != nil {
		t.Fatal(err)
	}
	if !receipt.Accepted || receipt.Info.ID != id || receipt.Point != env.Point || receipt.SnapCRC != env.SnapCRC {
		t.Fatalf("receipt = %+v, want an echo of the imported envelope", receipt)
	}

	// Re-importing is idempotent: 200, not adopted twice.
	iresp2, rbody2 := checkpointReq(t, tsDst, http.MethodPut, "/v1/jobs/"+id+"/checkpoint", raw)
	if iresp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate import status = %d: %s", iresp2.StatusCode, rbody2)
	}

	// The migrated job finishes on the destination byte-identical to an
	// uninterrupted synchronous sweep.
	rresp, got := awaitResult(t, tsDst, id)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d: %s", rresp.StatusCode, got)
	}
	sresp, want := post(t, tsRef, "/v1/sweep", sweepReq)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep status = %d", sresp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("migrated result differs from uninterrupted synchronous run")
	}

	// Release the source: the job ends as migrated (never cancelled), its
	// result is gone with a pointer to resubmit, and release is idempotent.
	dresp, dbody := checkpointReq(t, tsSrc, http.MethodDelete, "/v1/jobs/"+id+"/checkpoint", nil)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("release status = %d: %s", dresp.StatusCode, dbody)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		sresp, sbody := get(t, tsSrc, "/v1/jobs/"+id)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("source job info: %d", sresp.StatusCode)
		}
		var si jobs.Info
		if err := json.Unmarshal(sbody, &si); err != nil {
			t.Fatal(err)
		}
		if si.State == jobs.StateMigrated {
			break
		}
		if si.State.Terminal() {
			t.Fatalf("released job ended as %s, want migrated", si.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("released job never reached migrated (state %s)", si.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gresp, _ := get(t, tsSrc, "/v1/jobs/"+id+"/result"); gresp.StatusCode != http.StatusGone {
		t.Fatalf("migrated result status = %d, want 410", gresp.StatusCode)
	}
	if dresp2, _ := checkpointReq(t, tsSrc, http.MethodDelete, "/v1/jobs/"+id+"/checkpoint", nil); dresp2.StatusCode != http.StatusOK {
		t.Fatalf("second release status = %d, want idempotent 200", dresp2.StatusCode)
	}
	// A released job is terminal at the source: no further export.
	if eresp2, _ := get(t, tsSrc, "/v1/jobs/"+id+"/checkpoint"); eresp2.StatusCode != http.StatusConflict {
		t.Fatalf("export after release = %d, want 409", eresp2.StatusCode)
	}
}

// liveEnvelope builds a genuine mid-run checkpoint envelope client-side, the
// way a migration source would ship it.
func liveEnvelope(t *testing.T, seed int64) *jobs.ExportedJob {
	t.Helper()
	req := hwgc.CollectRequest{Bench: "jlisp", Seed: seed, Config: hwgc.Config{Cores: 2}}
	if _, err := req.Key(); err != nil {
		t.Fatal(err)
	}
	canonical, err := req.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := hwgc.StartCollectRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := rc.StepCycles(200); err != nil || done {
		t.Fatalf("step: done=%v err=%v", done, err)
	}
	snap, err := rc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return &jobs.ExportedJob{
		V:        1,
		ID:       hwgc.KeyBytes(canonical),
		Kind:     jobs.KindCollect,
		Request:  canonical,
		State:    jobs.StateCheckpointed,
		Cycle:    rc.Cycle(),
		Snapshot: snap,
		SnapCRC:  crc32.ChecksumIEEE(snap),
	}
}

// TestCheckpointEndpointValidation covers the failure surface of the
// checkpoint endpoint: absent jobs, malformed waits, and corrupt or
// mismatched envelopes, none of which may change local state.
func TestCheckpointEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))

	if resp, _ := get(t, ts, "/v1/jobs/absent/checkpoint"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("export of absent job = %d, want 404", resp.StatusCode)
	}
	if resp, _ := checkpointReq(t, ts, http.MethodDelete, "/v1/jobs/absent/checkpoint", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("release of absent job = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/jobs/absent/checkpoint?wait=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad wait = %d, want 400", resp.StatusCode)
	}
	if resp, _ := checkpointReq(t, ts, http.MethodPatch, "/v1/jobs/absent/checkpoint", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PATCH checkpoint = %d, want 405", resp.StatusCode)
	}

	env := liveEnvelope(t, 21)
	marshal := func(e *jobs.ExportedJob) []byte {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Envelope/URL ID mismatch.
	if resp, body := checkpointReq(t, ts, http.MethodPut, "/v1/jobs/somewhere-else/checkpoint", marshal(env)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ID mismatch import = %d (%s), want 400", resp.StatusCode, body)
	}
	// Corrupt snapshot (CRC breaks).
	corrupt := *env
	corrupt.Snapshot = append([]byte(nil), env.Snapshot...)
	corrupt.Snapshot[len(corrupt.Snapshot)/2] ^= 0x40
	if resp, body := checkpointReq(t, ts, http.MethodPut, "/v1/jobs/"+env.ID+"/checkpoint", marshal(&corrupt)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt import = %d (%s), want 400", resp.StatusCode, body)
	}
	// Truncated/garbage body.
	if resp, _ := checkpointReq(t, ts, http.MethodPut, "/v1/jobs/"+env.ID+"/checkpoint", []byte(`{"V":1`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage import = %d, want 400", resp.StatusCode)
	}
	// Nothing above left a job behind.
	if resp, body := get(t, ts, "/v1/jobs/"+env.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("rejected imports created job: %d %s", resp.StatusCode, body)
	}

	// A clean import works. Once the job is done, export still answers — a
	// finished-but-unfetched result migrates as a StateDone envelope — but
	// release refuses: a done job is not migrated state.
	if resp, body := checkpointReq(t, ts, http.MethodPut, "/v1/jobs/"+env.ID+"/checkpoint", marshal(env)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("clean import = %d: %s", resp.StatusCode, body)
	}
	if resp, body := awaitResult(t, ts, env.ID); resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("imported job result = %d", resp.StatusCode)
	}
	eresp, eraw := get(t, ts, "/v1/jobs/"+env.ID+"/checkpoint")
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("export of done job = %d, want a done envelope", eresp.StatusCode)
	}
	var done jobs.ExportedJob
	if err := json.Unmarshal(eraw, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone || len(done.ResultBody) == 0 {
		t.Errorf("done export: state=%s result=%dB, want the final result body", done.State, len(done.ResultBody))
	}
	if resp, _ := checkpointReq(t, ts, http.MethodDelete, "/v1/jobs/"+env.ID+"/checkpoint", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("release of done job = %d, want 409", resp.StatusCode)
	}
}
