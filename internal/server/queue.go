package server

import (
	"context"
	"errors"
	"sync"
)

// Errors reported by Queue.TryPush. The handler maps ErrQueueFull to HTTP
// 429 with a Retry-After hint (backpressure) and ErrShuttingDown to 503.
var (
	ErrQueueFull    = errors.New("server: job queue full")
	ErrShuttingDown = errors.New("server: shutting down")
)

// Job is one unit of work for the pool: a canonicalized collect or sweep
// request plus the context of the HTTP request that submitted it. The
// worker invokes run and publishes the encoded response body (or error) by
// closing done.
type Job struct {
	Key  string
	Kind string // "collect" or "sweep", for logging
	ctx  context.Context
	run  func() ([]byte, error)
	body []byte
	err  error
	done chan struct{}
}

func newJob(ctx context.Context, key, kind string, run func() ([]byte, error)) *Job {
	return &Job{Key: key, Kind: kind, ctx: ctx, run: run, done: make(chan struct{})}
}

func (j *Job) finish(body []byte, err error) {
	j.body, j.err = body, err
	close(j.done)
}

// Queue is the bounded job queue between the HTTP handlers and the worker
// pool. Admission is non-blocking: when the queue is full the caller gets
// ErrQueueFull immediately instead of piling up goroutines — the serving
// analogue of the paper's explicit stall accounting (a full queue is a
// counted rejection, not an invisible convoy).
//
// Every send holds mu and Close marks closed under the same lock, so a
// send-on-closed-channel panic is impossible; after Close the channel
// drains through Pop until empty, which is what lets graceful shutdown
// finish every admitted job.
type Queue struct {
	mu     sync.Mutex
	closed bool
	jobs   chan *Job
}

// NewQueue creates a queue holding at most depth pending jobs.
func NewQueue(depth int) *Queue {
	if depth < 1 {
		depth = 1
	}
	return &Queue{jobs: make(chan *Job, depth)}
}

// TryPush enqueues j without blocking. It returns ErrQueueFull when the
// queue is at capacity and ErrShuttingDown after Close.
func (q *Queue) TryPush(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	select {
	case q.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Pop dequeues the next job, blocking until one is available or the queue
// has been closed and fully drained (ok == false).
func (q *Queue) Pop() (*Job, bool) {
	j, ok := <-q.jobs
	return j, ok
}

// Close stops admission; jobs already admitted still drain through Pop.
// Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
}

// Depth returns the number of jobs currently waiting.
func (q *Queue) Depth() int { return len(q.jobs) }

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return cap(q.jobs) }
