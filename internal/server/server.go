// Package server implements gcserved, the HTTP/JSON simulation-serving
// subsystem. It turns the one-shot simulator library into a long-running
// service with the same contention discipline the paper applies to GC
// synchronization: the uncontended path is free (cache hits bypass the
// queue entirely), contention is bounded (a fixed worker pool over a
// bounded queue, with 429 backpressure instead of unbounded queueing), and
// every stall is accounted for (queue depth, rejections, timeouts and
// latency percentiles on /metrics).
//
// Endpoints:
//
//	POST /v1/collect   run one collection (named benchmark or inline plan)
//	POST /v1/sweep     run a Fig. 5-style core-count sweep
//	POST /v1/batch     run a list of collect/sweep items, per-item results
//	GET  /v1/workloads list benchmark workloads and baselines
//	GET  /healthz      liveness + pool state
//	GET  /metrics      Prometheus text-format counters
//
// With Options.JobsDir set, the durable async job tier (internal/jobs) is
// mounted as well:
//
//	POST   /v1/jobs              submit a collect/sweep job (202 + job info)
//	GET    /v1/jobs              list jobs (?active=true for non-terminal only)
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/result  final result body (202 until done)
//	GET    /v1/jobs/{id}/events  lifecycle events as a Server-Sent-Events stream
//	DELETE /v1/jobs/{id}         cancel (at the next checkpoint boundary)
//
// The checkpoint-transfer endpoints make jobs portable between backends —
// the primitive behind the elastic fleet tier's live migration:
//
//	GET    /v1/jobs/{id}/checkpoint  export the job's position as an envelope
//	PUT    /v1/jobs/{id}/checkpoint  adopt a foreign envelope (idempotent by key)
//	DELETE /v1/jobs/{id}/checkpoint  release the job here as migrated
//
// The sweep engine (internal/sweep) also rides the job tier:
//
//	POST   /v1/sweeps               submit a SweepSpace (202 + sweep info)
//	GET    /v1/sweeps/{id}          progress + current ranked frontier
//	GET    /v1/sweeps/{id}/events   per-point completions and frontier updates (SSE)
//	DELETE /v1/sweeps/{id}          cancel outstanding points
package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"hwgc"
	"hwgc/internal/jobs"
	"hwgc/internal/sweep"
)

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// Workers is the number of simulation workers (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted jobs
	// (default 64). When the queue is full, POSTs get 429 + Retry-After.
	QueueDepth int
	// CacheEntries / CacheBytes bound the content-addressed result cache
	// (defaults 1024 entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// Timeout is the per-request deadline covering queue wait and
	// simulation time (default 60s). A simulation that has already started
	// when the deadline fires runs to completion (the result is cached),
	// but the waiting client gets 504.
	Timeout time.Duration
	// MaxScale rejects requests whose Scale exceeds it (default 64;
	// negative means unlimited) so one request cannot occupy a worker for
	// arbitrarily long.
	MaxScale int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// CheckpointDir, when set, enables checkpointed execution of collect
	// jobs: the simulation state is snapshotted to this directory every
	// CheckpointCycles clock cycles, shutdown preempts running jobs at the
	// next checkpoint boundary instead of waiting them out, and a restarted
	// server resumes orphaned checkpoints from where they stopped.
	CheckpointDir string
	// CheckpointCycles is the snapshot interval in simulated clock cycles
	// (default 200000; only meaningful with CheckpointDir or JobsDir).
	CheckpointCycles int64
	// JobsDir, when set, mounts the durable async job tier (/v1/jobs): a
	// write-ahead log and checkpoint files live in this directory, and a
	// restarted server resumes unfinished jobs from it.
	JobsDir string
	// JobClasses is the priority-class specification ("name:weight,...")
	// for async jobs (default jobs.DefaultClasses; only meaningful with
	// JobsDir).
	JobClasses string
	// JobRunners is the number of async job runners, separate from the
	// synchronous worker pool so queued jobs cannot starve interactive
	// requests of workers (default 2; only meaningful with JobsDir).
	JobRunners int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	// <= 0, not == 0: a negative setting is a misconfiguration, not a
	// request for an unbounded (or disabled) cache, and must normalize to
	// the default exactly like the other knobs above.
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.MaxScale == 0 {
		o.MaxScale = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.CheckpointCycles <= 0 {
		o.CheckpointCycles = 200_000
	}
	if o.JobRunners <= 0 {
		o.JobRunners = 2
	}
	return o
}

// Server is the simulation-serving subsystem: HTTP handlers in front of a
// fixed worker pool over a bounded queue, with a result cache and metrics.
type Server struct {
	opts    Options
	metrics *Metrics
	cache   *Cache
	queue   *Queue
	mux     *http.ServeMux
	wg      sync.WaitGroup

	// ckpt is non-nil when Options.CheckpointDir is set; draining is
	// closed when Shutdown begins, which checkpointed jobs poll at each
	// snapshot boundary.
	ckpt     *checkpointStore
	draining chan struct{}

	// jobs is the durable async job manager, non-nil when Options.JobsDir
	// is set. Its runner pool is separate from the synchronous workers.
	jobs *jobs.Manager

	// sweeps is the parameter-space exploration coordinator, non-nil when
	// the job tier is mounted. Sweep state rides the jobs WAL.
	sweeps *sweep.Coordinator

	startOnce sync.Once
	stopOnce  sync.Once

	// runCollect / runSweep execute one canonicalized request and encode
	// the response body. Tests substitute these to control job duration.
	runCollect func(req hwgc.CollectRequest) ([]byte, error)
	runSweep   func(req hwgc.SweepRequest) ([]byte, error)

	// checkpointHook, when set by a test, runs after every checkpoint save
	// (in the worker goroutine) so tests can preempt at an exact boundary.
	checkpointHook func(key string)
}

// New creates a Server. Call Start to spin up the worker pool. It fails
// only when the async job tier is enabled and cannot be opened (bad class
// spec, unreadable jobs directory, corrupt WAL).
func New(opts Options) (*Server, error) {
	s := &Server{
		opts:     opts.withDefaults(),
		metrics:  NewMetrics(),
		draining: make(chan struct{}),
		runSweep: encodeSweep,
	}
	s.runCollect = func(req hwgc.CollectRequest) ([]byte, error) { return encodeCollectObserved(req, s.metrics) }
	if s.opts.CheckpointDir != "" {
		s.ckpt = &checkpointStore{dir: s.opts.CheckpointDir}
		s.runCollect = s.runCheckpointed
	}
	s.cache = NewCache(s.opts.CacheEntries, s.opts.CacheBytes)
	s.queue = NewQueue(s.opts.QueueDepth)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/collect", s.handleCollect)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.opts.JobsDir != "" {
		classes, err := jobs.ParseClasses(s.opts.JobClasses)
		if err != nil {
			return nil, err
		}
		// Job IDs are the same content address the synchronous path uses as
		// its cache key, so finished job results feed the result cache and
		// later synchronous requests for the same work hit it for free.
		mgr, err := jobs.Open(jobs.Options{
			Dir:              s.opts.JobsDir,
			Classes:          classes,
			Runners:          s.opts.JobRunners,
			CheckpointCycles: s.opts.CheckpointCycles,
			OnResult:         func(id string, body []byte) { s.cache.Put(id, body) },
		})
		if err != nil {
			return nil, err
		}
		s.jobs = mgr
		s.mux.HandleFunc("/v1/jobs", s.handleJobs)
		s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
		// The sweep coordinator plans spaces into collect jobs and dedupes
		// points against the same result cache the job tier feeds.
		coord, err := sweep.New(sweep.Options{Jobs: mgr, Lookup: s.cache.Get})
		if err != nil {
			return nil, err
		}
		if err := coord.Recover(); err != nil {
			return nil, err
		}
		s.sweeps = coord
		s.mux.HandleFunc("/v1/sweeps", s.handleSweeps)
		s.mux.HandleFunc("/v1/sweeps/", s.handleSweepByID)
	}
	return s, nil
}

func encodeCollect(req hwgc.CollectRequest) ([]byte, error) {
	return encodeCollectObserved(req, nil)
}

func encodeCollectObserved(req hwgc.CollectRequest, m *Metrics) ([]byte, error) {
	resp, err := hwgc.NewCollectResponse(req)
	if err != nil {
		return nil, err
	}
	m.ObserveCollect(resp)
	var b bytes.Buffer
	if err := resp.Encode(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func encodeSweep(req hwgc.SweepRequest) ([]byte, error) {
	resp, err := hwgc.NewSweepResponse(req)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	if err := resp.Encode(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Start launches the worker pool and, when checkpointing is enabled,
// enqueues recovery jobs for checkpoints orphaned by a previous process.
// Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
		if s.ckpt != nil {
			s.recoverCheckpoints()
		}
	})
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counter set (for embedding or tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Workers returns the size of the worker pool (after defaulting).
func (s *Server) Workers() int { return s.opts.Workers }

// Queue exposes the job queue state (for health reporting and tests).
func (s *Server) Queue() *Queue { return s.queue }

// Cache exposes the result cache (for tests).
func (s *Server) Cache() *Cache { return s.cache }

// Jobs exposes the async job manager (nil when JobsDir is unset).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Sweeps exposes the sweep coordinator (nil when JobsDir is unset).
func (s *Server) Sweeps() *sweep.Coordinator { return s.sweeps }

// Shutdown drains gracefully: admission stops (new jobs get 503), every
// job already admitted is executed — except checkpointed collect jobs,
// which persist their state at the next snapshot boundary and stop with
// ErrPreempted — and the worker pool exits. It returns nil once the pool
// has drained, or ctx.Err() if ctx expires first (the workers keep
// draining in the background in that case).
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		close(s.draining)
		s.queue.Close()
	})
	s.Start() // a never-started pool must still drain admitted jobs
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// Stop the sweep watchers before draining the job tier they watch;
	// in-flight sweeps stay durable in the WAL and resume on the next Open.
	if s.sweeps != nil {
		s.sweeps.Close()
	}
	// Drain the async job tier in parallel with the worker pool: running
	// jobs stop at their next checkpoint boundary (durably, in the WAL), so
	// this is bounded by one checkpoint interval, not by job length.
	var jobsErr error
	if s.jobs != nil {
		jobsErr = s.jobs.Drain(ctx)
	}
	select {
	case <-done:
		return jobsErr
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// worker executes jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		if j.ctx.Err() != nil {
			// The submitting request already gave up; don't burn a worker
			// on a result nobody is waiting for.
			s.metrics.jobsSkipped.Add(1)
			j.finish(nil, j.ctx.Err())
			continue
		}
		s.metrics.jobsStarted.Add(1)
		s.metrics.inflightJobs.Add(1)
		body, err := j.run()
		if err == nil {
			s.cache.Put(j.Key, body)
		}
		s.metrics.inflightJobs.Add(-1)
		s.metrics.jobsDone.Add(1)
		j.finish(body, err)
	}
}

// submit pushes a job and waits for its result or the context deadline.
func (s *Server) submit(ctx context.Context, j *Job) ([]byte, error) {
	if err := s.queue.TryPush(j); err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.body, j.err
	case <-ctx.Done():
		s.metrics.timeouts.Add(1)
		return nil, ctx.Err()
	}
}
