package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hwgc"
)

// newTestServer starts a server with opts plus an httptest front end and
// tears both down (draining) at cleanup.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := get(t, ts, "/v1/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wl struct {
		Workloads []string
		Baselines []string
	}
	if err := json.Unmarshal(body, &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Workloads) == 0 || len(wl.Baselines) == 0 {
		t.Fatalf("empty listing: %s", body)
	}
	found := false
	for _, w := range wl.Workloads {
		if w == "jlisp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("jlisp missing from %v", wl.Workloads)
	}
	if resp, _ := post(t, ts, "/v1/workloads", "{}"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/workloads: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 5})
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status   string
		Workers  int
		QueueCap int
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 || h.QueueCap != 5 {
		t.Fatalf("health body wrong: %s", body)
	}
}

func TestCollectCachesByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	req := `{"Bench":"jlisp","Config":{"Cores":4}}`
	resp1, body1 := post(t, ts, "/v1/collect", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q, want MISS", got)
	}
	var cr hwgc.CollectResponse
	if err := json.Unmarshal(body1, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Bench != "jlisp" || cr.Key == "" || cr.Result.Stats.Cycles <= 0 {
		t.Fatalf("response content wrong: %+v", cr)
	}
	// Canonicalization: defaults were resolved.
	if cr.Scale != 1 || cr.Seed != 42 {
		t.Fatalf("defaults not canonicalized: scale %d seed %d", cr.Scale, cr.Seed)
	}

	// The same request again: served from cache, byte-identical.
	resp2, body2 := post(t, ts, "/v1/collect", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit not byte-identical")
	}

	// A spelled-out but equivalent request canonicalizes to the same key.
	resp3, body3 := post(t, ts, "/v1/collect", `{"Bench":"jlisp","Scale":1,"Seed":42,"Config":{"Cores":4}}`)
	if got := resp3.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("equivalent request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("equivalent request response differs")
	}
}

func TestCollectInlinePlan(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := `{"Plan":{"Objs":[{"Pi":1,"Delta":1,"Ptrs":[1],"Data":[7]},{"Pi":0,"Delta":2,"Ptrs":[],"Data":[8,9]}],"Roots":[0]},"Config":{"Cores":2},"Verify":true}`
	resp, body := post(t, ts, "/v1/collect", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr hwgc.CollectResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Bench != "plan" || cr.Result.LiveObjects != 2 {
		t.Fatalf("plan response wrong: %+v", cr)
	}
}

func TestCollectRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxScale: 4})
	cases := map[string]string{
		"not json":      `¯\_(ツ)_/¯`,
		"unknown field": `{"Bench":"jlisp","Config":{},"Bogus":1}`,
		"no workload":   `{"Config":{}}`,
		"both":          `{"Bench":"jlisp","Plan":{"Objs":[{"Pi":0,"Delta":0,"Ptrs":[],"Data":[]}],"Roots":[]},"Config":{}}`,
		"unknown bench": `{"Bench":"doom","Config":{}}`,
		"bad config":    `{"Bench":"jlisp","Config":{"Cores":9999}}`,
		"bad plan":      `{"Plan":{"Objs":[{"Pi":3,"Delta":0,"Ptrs":[],"Data":[]}],"Roots":[]},"Config":{}}`,
		"over scale":    `{"Bench":"jlisp","Scale":5,"Config":{}}`,
	}
	for name, body := range cases {
		resp, data := post(t, ts, "/v1/collect", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, data)
		}
		var e struct{ Error string }
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %s", name, data)
		}
	}
	if resp, _ := get(t, ts, "/v1/collect"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/collect: status %d, want 405", resp.StatusCode)
	}
}

func TestSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := `{"Bench":"jlisp","Cores":[1,2],"Config":{}}`
	resp, body := post(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr hwgc.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 2 || len(sr.Results[0].Stats.PerCore) != 1 || len(sr.Results[1].Stats.PerCore) != 2 {
		t.Fatalf("sweep results wrong: %+v", sr)
	}
	// 1-core GC must not be faster than 2-core on the same heap... but more
	// to the point here: both ran and the sweep is cached.
	resp2, body2 := post(t, ts, "/v1/sweep", req)
	if resp2.Header.Get("X-Cache") != "HIT" || !bytes.Equal(body, body2) {
		t.Fatal("sweep repeat not served byte-identically from cache")
	}
	if resp, _ := post(t, ts, "/v1/sweep", `{"Cores":[1],"Config":{}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep without bench: status %d, want 400", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 7})
	post(t, ts, "/v1/collect", `{"Bench":"jlisp","Config":{"Cores":2}}`)
	post(t, ts, "/v1/collect", `{"Bench":"jlisp","Config":{"Cores":2}}`)
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`gcserved_requests_total{path="/v1/collect"} 2`,
		"gcserved_cache_hits_total 1",
		"gcserved_cache_misses_total 1",
		"gcserved_queue_capacity 7",
		"gcserved_queue_depth 0",
		"gcserved_queue_full_total 0",
		"gcserved_jobs_done_total 1",
		`gcserved_request_seconds{quantile="0.99"}`,
		"gcserved_request_seconds_count 2",
		`gcserved_responses_total{code="200"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// Concurrent-collection scenarios must surface in the scrape: one series
// per barrier mode plus the aggregated barrier and floating-garbage
// counters, fed by both the direct and the checkpointed execution path.
func TestMetricsConcurrentCollections(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, body := range []string{
		`{"Bench":"jlisp","Config":{"Cores":2,"MutatorOps":1099511627776,"BarrierMode":"satb"}}`,
		`{"Bench":"jlisp","Config":{"Cores":2,"MutatorOps":1099511627776,"BarrierMode":"incupdate"}}`,
		`{"Bench":"jlisp","Config":{"Cores":2,"MutatorOps":1099511627776}}`,
		`{"Bench":"jlisp","Config":{"Cores":2}}`, // stop-the-world: not counted
	} {
		if resp, b := post(t, ts, "/v1/collect", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("collect %s: status %d: %s", body, resp.StatusCode, b)
		}
	}
	_, body := get(t, ts, "/metrics")
	text := string(body)
	for _, want := range []string{
		`gcserved_concurrent_collections_total{barrier="incupdate"} 1`,
		`gcserved_concurrent_collections_total{barrier="none"} 1`,
		`gcserved_concurrent_collections_total{barrier="satb"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	for _, counter := range []string{"gcserved_barrier_invocations_total", "gcserved_barrier_cycles_total"} {
		v := scrapeValue(t, text, counter)
		if v <= 0 {
			t.Errorf("%s = %d, want > 0", counter, v)
		}
	}
	if v := scrapeValue(t, text, "gcserved_floating_garbage_words_total"); v < 0 {
		t.Errorf("gcserved_floating_garbage_words_total = %d", v)
	}
}

// scrapeValue extracts a single un-labeled counter value from Prometheus
// exposition text.
func scrapeValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// slowServer returns a server whose collect jobs block for d (fake results,
// no simulation), for deterministic backpressure and deadline tests.
func slowServer(t *testing.T, opts Options, d time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.runCollect = func(req hwgc.CollectRequest) ([]byte, error) {
		time.Sleep(d)
		return []byte(fmt.Sprintf(`{"Bench":%q,"Seed":%d}`, req.Bench, req.Seed)), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func TestQueueFullBackpressure(t *testing.T) {
	s, ts := slowServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second}, 200*time.Millisecond)

	const n = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[int]int{}
		retryHdr string
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"Bench":"jlisp","Seed":%d,"Config":{}}`, i+1)
			resp, data := post(t, ts, "/v1/collect", body)
			mu.Lock()
			statuses[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests {
				retryHdr = resp.Header.Get("Retry-After")
			}
			_ = data
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no request was rejected by the full queue: %v", statuses)
	}
	if statuses[http.StatusOK]+statuses[http.StatusTooManyRequests] != n {
		t.Fatalf("unexpected statuses: %v", statuses)
	}
	if retryHdr != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", retryHdr)
	}
	if got := s.metrics.queueFull.Load(); got != int64(statuses[http.StatusTooManyRequests]) {
		t.Fatalf("queue_full_total %d != %d rejected requests", got, statuses[http.StatusTooManyRequests])
	}
}

func TestRequestDeadline(t *testing.T) {
	s, ts := slowServer(t, Options{Workers: 1, Timeout: 50 * time.Millisecond}, 300*time.Millisecond)
	resp, body := post(t, ts, "/v1/collect", `{"Bench":"jlisp","Config":{}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if s.metrics.timeouts.Load() == 0 {
		t.Fatal("timeout not counted")
	}
}
