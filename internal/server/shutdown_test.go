package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hwgc"
)

// TestGracefulShutdownDrains checks the drain contract: every job admitted
// before Shutdown is executed to completion and answered with 200, new
// submissions are refused with 503, and Shutdown returns only after the
// pool has drained.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 16)
	s.runCollect = func(req hwgc.CollectRequest) ([]byte, error) {
		started <- struct{}{}
		time.Sleep(100 * time.Millisecond)
		return []byte(fmt.Sprintf(`{"Seed":%d}`, req.Seed)), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Admit three jobs: one running, two queued behind it.
	const n = 3
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses []int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"Bench":"jlisp","Seed":%d,"Config":{}}`, i+1)
			resp, _ := post(t, ts, "/v1/collect", body)
			mu.Lock()
			statuses = append(statuses, resp.StatusCode)
			mu.Unlock()
		}(i)
	}
	<-started // the first job is on the worker
	// Wait until the other two are actually admitted to the queue; only
	// admitted jobs are covered by the drain guarantee.
	for deadline := time.Now().Add(5 * time.Second); s.queue.Depth() < n-1; {
		if time.Now().After(deadline) {
			t.Fatalf("jobs never queued (depth %d)", s.queue.Depth())
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownStart := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	drainTime := time.Since(shutdownStart)

	// Shutdown must not have returned before the queued jobs ran
	// (3 × 100ms serialized on one worker, minus what already elapsed).
	if s.metrics.jobsDone.Load() != n {
		t.Fatalf("drained %d jobs, want %d (drain took %s)", s.metrics.jobsDone.Load(), n, drainTime)
	}

	wg.Wait()
	for _, code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("admitted job answered %d, want 200 (all: %v)", code, statuses)
		}
	}

	// New work is refused once shutdown has begun.
	resp, body := post(t, ts, "/v1/collect", `{"Bench":"jlisp","Seed":99,"Config":{}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d (%s), want 503", resp.StatusCode, body)
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestShutdownHonorsContext checks that a too-short drain budget surfaces
// as ctx.Err instead of hanging.
func TestShutdownHonorsContext(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.runCollect = func(req hwgc.CollectRequest) ([]byte, error) {
		time.Sleep(300 * time.Millisecond)
		return []byte(`{}`), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, ts, "/v1/collect", `{"Bench":"jlisp","Config":{}}`)
	}()
	time.Sleep(50 * time.Millisecond) // let the job reach the worker

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("shutdown returned nil despite an in-flight 300ms job and a 10ms budget")
	}
	<-done
	// Let the background drain finish so the test leaves no goroutines.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Shutdown(ctx2); err != nil {
		t.Fatalf("final drain: %v", err)
	}
}
