package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"hwgc"
	"hwgc/internal/jobs"
	"hwgc/internal/sweep"
)

// sweepSubmitBody is the POST /v1/sweeps request: the space to explore plus
// an optional job priority class for its points.
type sweepSubmitBody struct {
	Space *hwgc.SweepSpace
	Class string `json:",omitempty"`
}

// writeSweepInfo serves a sweep Info snapshot as indented JSON.
func writeSweepInfo(w http.ResponseWriter, code int, info sweep.Info) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

// handleSweeps serves POST /v1/sweeps. Submissions are idempotent: the
// sweep ID is the content address of the canonical space, so resubmitting
// an identical space returns the existing sweep (200) with zero new jobs
// instead of planning a new one (202).
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/sweeps", false, func(w http.ResponseWriter, r *http.Request) {
		if !requirePost(w, r) {
			return
		}
		var body sweepSubmitBody
		if !decodeJSON(w, r, &body) {
			return
		}
		if body.Space == nil {
			writeError(w, http.StatusBadRequest, "Space must be set")
			return
		}
		if body.Class != "" && !s.jobs.HasClass(body.Class) {
			writeError(w, http.StatusBadRequest, "unknown job class %q", body.Class)
			return
		}
		if err := body.Space.Canonicalize(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid sweep space: %v", err)
			return
		}
		if s.opts.MaxScale > 0 {
			for _, sc := range body.Space.Scales {
				if sc > s.opts.MaxScale {
					writeError(w, http.StatusBadRequest, "scale %d exceeds server limit %d", sc, s.opts.MaxScale)
					return
				}
			}
		}
		info, accepted, err := s.sweeps.Submit(body.Space, body.Class)
		switch {
		case errors.Is(err, jobs.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, "submitting sweep: %v", err)
			return
		}
		code := http.StatusOK // deduped onto an existing sweep
		if accepted {
			code = http.StatusAccepted
		}
		w.Header().Set("Location", "/v1/sweeps/"+info.ID)
		writeSweepInfo(w, code, info)
	})(w, r)
}

// handleSweepByID routes /v1/sweeps/{id} and /v1/sweeps/{id}/events.
func (s *Server) handleSweepByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || strings.Contains(sub, "/") {
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
		return
	}
	switch sub {
	case "":
		s.instrument("/v1/sweeps/{id}", false, func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				s.serveSweepInfo(w, id)
			case http.MethodDelete:
				s.serveSweepCancel(w, id)
			default:
				w.Header().Set("Allow", "GET, DELETE")
				writeError(w, http.StatusMethodNotAllowed, "%s requires GET or DELETE", r.URL.Path)
			}
		})(w, r)
	case "events":
		s.instrument("/v1/sweeps/{id}/events", false, func(w http.ResponseWriter, r *http.Request) {
			if !requireGet(w, r) {
				return
			}
			s.serveSweepEvents(w, r, id)
		})(w, r)
	default:
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
	}
}

func (s *Server) serveSweepInfo(w http.ResponseWriter, id string) {
	info, err := s.sweeps.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no such sweep %q", id)
		return
	}
	writeSweepInfo(w, http.StatusOK, info)
}

func (s *Server) serveSweepCancel(w http.ResponseWriter, id string) {
	info, err := s.sweeps.Cancel(id)
	switch {
	case errors.Is(err, sweep.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such sweep %q", id)
	case errors.Is(err, sweep.ErrTerminal):
		writeError(w, http.StatusConflict, "sweep %s is already %s", id, info.State)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "cancelling sweep: %v", err)
	default:
		writeSweepInfo(w, http.StatusOK, info)
	}
}

// lastEventID extracts the SSE resume position: the Last-Event-ID header a
// reconnecting EventSource sends automatically, with ?last_event_id= as a
// curl-friendly fallback. Zero means "from the beginning".
func lastEventID(r *http.Request) int64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// serveSweepEvents streams a sweep's progress as Server-Sent Events: the
// replayable history (from Last-Event-ID onward), then live events until
// the sweep finishes or the client disconnects. Every event carries its Seq
// as the SSE id, the Type as the event name, and the Event JSON as data.
func (s *Server) serveSweepEvents(w http.ResponseWriter, r *http.Request, id string) {
	history, live, stop, err := s.sweeps.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no such sweep %q", id)
		return
	}
	defer stop()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	resumeFrom := lastEventID(r)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(ev sweep.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return true
		}
		fl.Flush()
		return ev.Type == sweep.StateDone || ev.Type == sweep.StateCancelled
	}
	for _, ev := range history {
		if ev.Seq <= resumeFrom {
			continue
		}
		if write(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok || write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.draining:
			return
		}
	}
}
