package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hwgc/internal/sweep"
)

// sweepBody builds a POST /v1/sweeps body over a small Cores axis.
func sweepBody(seed int64, cores ...int64) string {
	vals := make([]string, len(cores))
	for i, c := range cores {
		vals[i] = strconv.FormatInt(c, 10)
	}
	return fmt.Sprintf(
		`{"Space":{"Benches":["jlisp"],"Seeds":[%d],"Base":{},"Axes":[{"Field":"Cores","Values":[%s]}]}}`,
		seed, strings.Join(vals, ","))
}

// postSweep submits a sweep body and decodes the Info response.
func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, sweep.Info) {
	t.Helper()
	resp, data := post(t, ts, "/v1/sweeps", body)
	var info sweep.Info
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatalf("decoding sweep info: %v: %s", err, data)
		}
	}
	return resp, info
}

// awaitSweep polls GET /v1/sweeps/{id} until the sweep leaves running.
func awaitSweep(t *testing.T, ts *httptest.Server, id string) sweep.Info {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, data := get(t, ts, "/v1/sweeps/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status: %d %s", resp.StatusCode, data)
		}
		var info sweep.Info
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatalf("decoding sweep info: %v: %s", err, data)
		}
		if info.State != sweep.StateRunning {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still running: %s", id, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	ID    int64
	Event string
	Data  string
}

// readSSE parses frames off an event stream until EOF or, when maxEvents is
// positive, until that many frames have been read (simulating a client that
// drops the connection mid-stream).
func readSSE(t *testing.T, r *http.Response, maxEvents int) []sseEvent {
	t.Helper()
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.ID = id
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			events = append(events, cur)
			cur = sseEvent{}
			if maxEvents > 0 && len(events) >= maxEvents {
				return events
			}
		}
	}
	return events
}

// getSSE opens an event stream with an optional Last-Event-ID resume
// position. The caller owns resp.Body.
func getSSE(t *testing.T, ts *httptest.Server, path string, lastEventID int64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSweepsEndpointLifecycle drives a sweep over the full HTTP surface:
// 202 + Location on submit, idempotent 200 on resubmit (same ID, no new
// planning), status polling to completion, and a ranked frontier in the
// final Info.
func TestSweepsEndpointLifecycle(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	body := sweepBody(11, 1, 2, 4)

	resp, info := postSweep(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if info.ID == "" || info.Points != 3 || info.State != sweep.StateRunning {
		t.Fatalf("submit info = %+v", info)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+info.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Resubmitting the identical space dedupes onto the running sweep.
	resp2, info2 := postSweep(t, ts, body)
	if resp2.StatusCode != http.StatusOK || info2.ID != info.ID {
		t.Fatalf("resubmit: status %d id %s, want 200 + %s", resp2.StatusCode, info2.ID, info.ID)
	}

	done := awaitSweep(t, ts, info.ID)
	if done.State != sweep.StateDone || done.Completed != 3 || done.Failed != 0 {
		t.Fatalf("final info = %+v", done)
	}
	if len(done.Frontier) != 3 || done.Frontier[0].Rank != 1 {
		t.Fatalf("frontier = %+v", done.Frontier)
	}

	// Resubmission after completion still returns the finished sweep.
	resp3, info3 := postSweep(t, ts, body)
	if resp3.StatusCode != http.StatusOK || info3.ID != info.ID || info3.State != sweep.StateDone {
		t.Fatalf("post-done resubmit: status %d info %+v", resp3.StatusCode, info3)
	}

	// The sweep tier shows up on /metrics next to the job tier.
	_, bodyM := get(t, ts, "/metrics")
	for _, want := range []string{
		"gcsweep_sweeps_submitted_total 1",
		"gcsweep_sweeps_completed_total 1",
		"gcsweep_points_planned_total 3",
		"gcsweep_points_completed_total 3",
	} {
		if !bytes.Contains(bodyM, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSweepsBarrierModeAxis is the concurrent-collection acceptance check
// at the serving tier: a sweep over the BarrierMode enum axis (crossed with
// Cores) runs end to end through gcserved and two independent servers
// produce the identical ranked frontier — same point keys, same ranks, same
// objective values — because every point is a deterministic simulation and
// the planner's canonical order is fixed.
func TestSweepsBarrierModeAxis(t *testing.T) {
	body := `{"Space":{"Benches":["jlisp"],"Seeds":[42],` +
		`"Base":{"MutatorOps":1099511627776},` +
		`"Axes":[{"Field":"BarrierMode","Strings":["none","satb","incupdate"]},` +
		`{"Field":"Cores","Values":[1,4]}]}}`

	run := func() sweep.Info {
		_, ts := newTestServer(t, jobsOpts(t))
		resp, info := postSweep(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d, want 202", resp.StatusCode)
		}
		if info.Points != 6 {
			t.Fatalf("planned %d points, want 6 (3 barrier modes x 2 core counts)", info.Points)
		}
		done := awaitSweep(t, ts, info.ID)
		if done.State != sweep.StateDone || done.Completed != 6 || done.Failed != 0 {
			t.Fatalf("final info = %+v", done)
		}
		if len(done.Frontier) == 0 {
			t.Fatal("no frontier")
		}
		return done
	}

	a, b := run(), run()
	if len(a.Frontier) != len(b.Frontier) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(a.Frontier), len(b.Frontier))
	}
	for i := range a.Frontier {
		fa, fb := a.Frontier[i], b.Frontier[i]
		if fa.Key != fb.Key || fa.Rank != fb.Rank || fa.Value != fb.Value || fa.Cycles != fb.Cycles {
			t.Errorf("frontier[%d] differs across servers: %+v vs %+v", i, fa, fb)
		}
	}
}

// TestSweepsMemoryHierarchyAxes is the same cross-server contract for the
// memory-hierarchy extension: a sweep crossing the NUMAPlacement enum axis
// with NUMADomains and the L1Sets cache gate runs end to end through
// gcserved, and two independent servers produce the identical ranked
// frontier. The NUMADomains axis includes 0, so the flat machine competes
// in the same frontier as the NUMA points; the zero point's key must
// canonicalize identically on both servers for the dedup to line up.
func TestSweepsMemoryHierarchyAxes(t *testing.T) {
	body := `{"Space":{"Benches":["jlisp"],"Seeds":[42],` +
		`"Base":{"Cores":4},` +
		`"Axes":[{"Field":"NUMAPlacement","Strings":["naive","local"]},` +
		`{"Field":"NUMADomains","Values":[0,2]},` +
		`{"Field":"L1Sets","Values":[0,16]}]}}`

	run := func() sweep.Info {
		_, ts := newTestServer(t, jobsOpts(t))
		resp, info := postSweep(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d, want 202", resp.StatusCode)
		}
		// 2 placements x 2 domain counts x 2 cache gates = 8 raw points,
		// but placement is a dead knob at NUMADomains=0: both spellings
		// canonicalize to the flat machine, deduping 8 down to 6.
		if info.Points != 6 {
			t.Fatalf("planned %d points, want 6 (dead placement knob dedups the flat half)", info.Points)
		}
		done := awaitSweep(t, ts, info.ID)
		if done.State != sweep.StateDone || done.Completed != 6 || done.Failed != 0 {
			t.Fatalf("final info = %+v", done)
		}
		if len(done.Frontier) == 0 {
			t.Fatal("no frontier")
		}
		return done
	}

	a, b := run(), run()
	if len(a.Frontier) != len(b.Frontier) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(a.Frontier), len(b.Frontier))
	}
	for i := range a.Frontier {
		fa, fb := a.Frontier[i], b.Frontier[i]
		if fa.Key != fb.Key || fa.Rank != fb.Rank || fa.Value != fb.Value || fa.Cycles != fb.Cycles {
			t.Errorf("frontier[%d] differs across servers: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestSweepsEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"no space":    {`{}`, http.StatusBadRequest},
		"bad class":   {`{"Space":{"Benches":["jlisp"],"Base":{}},"Class":"nope"}`, http.StatusBadRequest},
		"bad bench":   {`{"Space":{"Benches":["nope"],"Base":{}}}`, http.StatusBadRequest},
		"bad axis":    {`{"Space":{"Benches":["jlisp"],"Base":{},"Axes":[{"Field":"Nope","Values":[1]}]}}`, http.StatusBadRequest},
		"unknown key": {`{"Space":{"Benches":["jlisp"],"Base":{}},"Bogus":1}`, http.StatusBadRequest},
	} {
		resp, data := post(t, ts, "/v1/sweeps", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d: %s", name, resp.StatusCode, tc.want, data)
		}
	}

	// Method and routing checks.
	respG, _ := get(t, ts, "/v1/sweeps")
	if respG.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweeps: status %d, want 405", respG.StatusCode)
	}
	resp404, _ := get(t, ts, "/v1/sweeps/feedfeed")
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: status %d, want 404", resp404.StatusCode)
	}
	respSub, _ := get(t, ts, "/v1/sweeps/feedfeed/bogus")
	if respSub.StatusCode != http.StatusNotFound {
		t.Errorf("unknown subresource: status %d, want 404", respSub.StatusCode)
	}
}

// TestSweepsMaxScale checks that the server-wide scale limit covers sweep
// spaces exactly like single requests.
func TestSweepsMaxScale(t *testing.T) {
	opts := jobsOpts(t)
	opts.MaxScale = 1
	_, ts := newTestServer(t, opts)
	resp, data := post(t, ts, "/v1/sweeps",
		`{"Space":{"Benches":["jlisp"],"Scales":[4],"Base":{}}}`)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(data, []byte("exceeds server limit")) {
		t.Fatalf("over-scale sweep: %d %s", resp.StatusCode, data)
	}
}

// TestSweepsCancelHTTP covers DELETE: cancelling a live sweep, then the 409
// on a second cancel, and 404 for unknown IDs.
func TestSweepsCancelHTTP(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	_, info := postSweep(t, ts, sweepBody(13, 1, 2, 4, 8, 16, 32, 48, 64))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}
	final := awaitSweep(t, ts, info.ID)
	if final.State != sweep.StateCancelled {
		t.Fatalf("state after cancel = %s", final.State)
	}

	resp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", resp2.StatusCode)
	}

	req404, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/feedfeed", nil)
	resp3, err := http.DefaultClient.Do(req404)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: status %d, want 404", resp3.StatusCode)
	}
}

// TestSweepEventsSSEResume is the Last-Event-ID regression test: a client
// that disconnects mid-stream and reconnects with its last seen id must
// receive exactly the events after that id — no duplicates, no gaps.
func TestSweepEventsSSEResume(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	_, info := postSweep(t, ts, sweepBody(17, 1, 2, 4))
	awaitSweep(t, ts, info.ID)

	// First connection: read two events, then drop the connection
	// mid-stream the way a flaky client would.
	resp := getSSE(t, ts, "/v1/sweeps/"+info.ID+"/events", 0)
	head := readSSE(t, resp, 2)
	resp.Body.Close()
	if len(head) != 2 || head[0].Event != "planned" || head[0].ID != 1 {
		t.Fatalf("head events = %+v", head)
	}

	// Reconnect with Last-Event-ID: the replay must resume strictly after
	// the last seen sequence number.
	resp2 := getSSE(t, ts, "/v1/sweeps/"+info.ID+"/events", head[1].ID)
	tail := readSSE(t, resp2, 0)
	resp2.Body.Close()
	if len(tail) == 0 {
		t.Fatal("no events after resume")
	}
	seen := head[1].ID
	for _, ev := range tail {
		if ev.ID != seen+1 {
			t.Fatalf("resume gap or duplicate: got seq %d after %d (tail %+v)", ev.ID, seen, tail)
		}
		seen = ev.ID
	}
	last := tail[len(tail)-1]
	if last.Event != sweep.StateDone {
		t.Fatalf("stream ended on %q, want %q", last.Event, sweep.StateDone)
	}
	var done sweep.Event
	if err := json.Unmarshal([]byte(last.Data), &done); err != nil {
		t.Fatalf("decoding done event: %v: %s", err, last.Data)
	}
	if done.Completed != 3 || len(done.Frontier) != 3 {
		t.Fatalf("done event = %+v", done)
	}

	// A full replay and head+tail must cover the same sequence exactly.
	resp3 := getSSE(t, ts, "/v1/sweeps/"+info.ID+"/events", 0)
	full := readSSE(t, resp3, 0)
	resp3.Body.Close()
	if want, got := len(full), len(head)+len(tail); want != got {
		t.Fatalf("head+tail has %d events, full replay %d", got, want)
	}
}

// TestJobsEventsSSEResume mirrors the sweep resume regression on the job
// stream: reconnecting with Last-Event-ID skips already-delivered events.
func TestJobsEventsSSEResume(t *testing.T) {
	_, ts := newTestServer(t, jobsOpts(t))
	_, info := postJob(t, ts, `{"Collect":{"Bench":"jlisp","Seed":21,"Config":{}}}`)
	awaitResult(t, ts, info.ID)

	resp := getSSE(t, ts, "/v1/jobs/"+info.ID+"/events", 0)
	full := readSSE(t, resp, 0)
	resp.Body.Close()
	if len(full) < 3 {
		t.Fatalf("full stream = %+v, want at least queued/running/done", full)
	}

	// Disconnect after the first event; resume must deliver exactly the
	// rest of the history.
	resp2 := getSSE(t, ts, "/v1/jobs/"+info.ID+"/events", full[0].ID)
	tail := readSSE(t, resp2, 0)
	resp2.Body.Close()
	if len(tail) != len(full)-1 {
		t.Fatalf("resumed stream has %d events, want %d", len(tail), len(full)-1)
	}
	for i, ev := range tail {
		if ev.ID != full[i+1].ID || ev.Event != full[i+1].Event {
			t.Fatalf("resumed event %d = %+v, want %+v", i, ev, full[i+1])
		}
	}
}
