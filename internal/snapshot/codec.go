// Package snapshot serializes the complete mid-collection state of the
// simulated GC coprocessor (machine.State) to a versioned, CRC-framed
// binary format, and computes field-level diffs between two states.
//
// The format is the software stand-in for the FPGA prototype's state
// readback path (paper Section VI-A streams internal state off the chip for
// offline analysis): a snapshot holds everything needed to resume the
// collection bit-identically — heap image, scan/free registers and locks,
// per-core register files, memory-scheduler buffers and in-flight split
// transactions, header FIFO and cache, stride table.
//
// Layout:
//
//	magic "HWGCSNP1" | u32 version | section*5
//
// with each section framed as
//
//	u8 tag | u32 payloadLen | payload | u32 crc32(IEEE, payload)
//
// in fixed tag order (config, heap, sync, mem, machine). All integers are
// little-endian and fixed-width. The decoder validates framing, CRCs, and
// every element count against the remaining payload bytes before
// allocating, so truncated, corrupted or adversarial inputs produce errors
// — never panics or unbounded allocations.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Format identification. Version 2 appended the concurrent-mutator fields
// (barrier mode and churn-mutator knobs in the config section, the mutator
// port's state in the machine section). Version 3 appended the memory
// hierarchy (NUMA and cache knobs in the config section; locality/cache
// counters, per-load completion classes, the extra completion queues and the
// cache tag arrays in the mem section). Version-1 and -2 snapshots decode
// unchanged. Encode always writes the current version.
const (
	magic      = "HWGCSNP1"
	version    = 3
	minVersion = 1
)

// Section tags, in their fixed file order.
const (
	tagConfig uint8 = 1 + iota
	tagHeap
	tagSync
	tagMem
	tagMachine
)

// writer accumulates one section payload.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// count prefixes a sequence with its element count.
func (w *writer) count(n int) { w.u32(uint32(n)) }

// frame appends the section to out with its tag, length and checksum.
func (w *writer) frame(out []byte, tag uint8) []byte {
	out = append(out, tag)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(w.buf)))
	out = append(out, w.buf...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(w.buf))
}

// reader consumes one section payload with a sticky error: after the first
// failure every subsequent read returns zero values, and the caller checks
// err once at the end.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.fail("truncated: need %d bytes, have %d", n, r.remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid boolean encoding")
		return false
	}
}

// intField reads an i64 into an int, rejecting values that do not round-trip
// (a corrupted snapshot must not silently truncate on 32-bit platforms).
func (r *reader) intField() int {
	v := r.i64()
	n := int(v)
	if int64(n) != v {
		r.fail("integer %d overflows int", v)
	}
	return n
}

// count reads an element count and bounds it by the remaining payload:
// every element occupies at least minItemSize bytes, so a count larger than
// remaining/minItemSize is corrupt and must not drive an allocation.
func (r *reader) count(minItemSize int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minItemSize) > int64(r.remaining()) {
		r.fail("element count %d exceeds remaining %d bytes", n, r.remaining())
		return 0
	}
	return int(n)
}

// done checks that the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("snapshot: %d trailing bytes in section", r.remaining())
	}
	return nil
}

// readSection validates the next section's framing against wantTag and
// returns a reader over its checksummed payload.
func readSection(r *reader, wantTag uint8) (*reader, error) {
	tag := r.u8()
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if tag != wantTag {
		return nil, fmt.Errorf("snapshot: section tag %d, want %d", tag, wantTag)
	}
	payload := r.take(int(n))
	sum := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("snapshot: section %d checksum mismatch (%08x != %08x)", tag, got, sum)
	}
	return &reader{data: payload}, nil
}
