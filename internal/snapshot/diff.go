package snapshot

import (
	"fmt"
	"reflect"

	"hwgc/internal/machine"
)

// maxDiffs caps Diff's output; a diverged heap image can differ in
// thousands of words and the first handful already identify the divergence.
const maxDiffs = 100

// Diff compares two machine states field by field and returns one line per
// differing leaf field, as "path: a-value != b-value". Top-level fields
// named in ignore are skipped (bisect ignores "Config" when comparing runs
// that intentionally differ in configuration). Output is capped at 100
// lines, with a trailing "... and N more" marker.
func Diff(a, b *machine.State, ignore ...string) []string {
	skip := map[string]bool{}
	for _, f := range ignore {
		skip[f] = true
	}
	d := &differ{skip: skip}
	d.walk("", reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem(), true)
	if d.extra > 0 {
		d.out = append(d.out, fmt.Sprintf("... and %d more", d.extra))
	}
	return d.out
}

type differ struct {
	skip  map[string]bool
	out   []string
	extra int
}

func (d *differ) report(path string, a, b reflect.Value) {
	if len(d.out) >= maxDiffs {
		d.extra++
		return
	}
	d.out = append(d.out, fmt.Sprintf("%s: %v != %v", path, a.Interface(), b.Interface()))
}

// walk recurses through matching structure; top marks the root level, where
// the ignore set applies.
func (d *differ) walk(path string, a, b reflect.Value, top bool) {
	switch a.Kind() {
	case reflect.Pointer:
		switch {
		case a.IsNil() && b.IsNil():
		case a.IsNil() || b.IsNil():
			d.report(path, a, b)
		default:
			d.walk(path, a.Elem(), b.Elem(), top)
		}
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			name := t.Field(i).Name
			if top && d.skip[name] {
				continue
			}
			p := name
			if path != "" {
				p = path + "." + name
			}
			d.walk(p, a.Field(i), b.Field(i), false)
		}
	case reflect.Slice, reflect.Array:
		n, m := a.Len(), b.Len()
		if n != m {
			d.report(path+".len", reflect.ValueOf(n), reflect.ValueOf(m))
		}
		for i := 0; i < n && i < m; i++ {
			d.walk(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), false)
		}
	default:
		if !a.Equal(b) {
			d.report(path, a, b)
		}
	}
}
