package snapshot

import (
	"fmt"
	"os"
	"path/filepath"

	"hwgc/internal/heap"
	"hwgc/internal/machine"
	"hwgc/internal/mem"
	"hwgc/internal/syncblock"
)

// Encode serializes a captured machine state.
func Encode(st *machine.State) []byte {
	out := append([]byte(nil), magic...)
	var hdr writer
	hdr.u32(version)
	out = append(out, hdr.buf...)

	var w writer
	encodeConfig(&w, st.Config)
	out = w.frame(out, tagConfig)

	w = writer{}
	encodeHeap(&w, st.Heap)
	out = w.frame(out, tagHeap)

	w = writer{}
	encodeSync(&w, st.Sync)
	out = w.frame(out, tagSync)

	w = writer{}
	encodeMem(&w, st.Mem)
	out = w.frame(out, tagMem)

	w = writer{}
	encodeMachine(&w, st)
	out = w.frame(out, tagMachine)
	return out
}

// Decode parses a serialized machine state, validating framing and
// checksums. The result is structurally sound but not semantically
// validated — machine.RestoreMachine performs the cross-field checks.
func Decode(data []byte) (*machine.State, error) {
	r := &reader{data: data}
	if got := r.take(len(magic)); r.err != nil {
		return nil, r.err
	} else if string(got) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", got)
	}
	if v := r.u32(); r.err != nil {
		return nil, r.err
	} else if v != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (have %d)", v, version)
	}

	st := &machine.State{}
	sec, err := readSection(r, tagConfig)
	if err != nil {
		return nil, err
	}
	if st.Config, err = decodeConfig(sec); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagHeap); err != nil {
		return nil, err
	}
	if st.Heap, err = decodeHeap(sec); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagSync); err != nil {
		return nil, err
	}
	if st.Sync, err = decodeSync(sec); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagMem); err != nil {
		return nil, err
	}
	if st.Mem, err = decodeMem(sec); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagMachine); err != nil {
		return nil, err
	}
	if err = decodeMachine(sec, st); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last section", r.remaining())
	}
	return st, nil
}

// WriteFile atomically writes the encoded state to path (temp file +
// rename), so a crash mid-write never leaves a torn snapshot behind.
func WriteFile(path string, st *machine.State) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(Encode(st)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*machine.State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func encodeConfig(w *writer, c machine.Config) {
	w.i64(int64(c.Cores))
	w.i64(int64(c.MemLatency))
	w.i64(int64(c.ExtraMemLatency))
	w.i64(int64(c.MemBandwidth))
	w.i64(int64(c.MemStoreQueueDepth))
	w.i64(int64(c.MemBanks))
	w.i64(int64(c.MemBankBusy))
	w.i64(int64(c.FIFOCapacity))
	w.bool(c.DisableFIFO)
	w.bool(c.OptUnlockedMarkRead)
	w.i64(int64(c.HeaderCacheLines))
	w.i64(int64(c.StrideWords))
	w.i64(c.StartupCycles)
	w.i64(c.ShutdownCycles)
	w.i64(c.MaxCycles)
}

func decodeConfig(r *reader) (machine.Config, error) {
	c := machine.Config{
		Cores:              r.intField(),
		MemLatency:         r.intField(),
		ExtraMemLatency:    r.intField(),
		MemBandwidth:       r.intField(),
		MemStoreQueueDepth: r.intField(),
		MemBanks:           r.intField(),
		MemBankBusy:        r.intField(),
		FIFOCapacity:       r.intField(),
	}
	c.DisableFIFO = r.bool()
	c.OptUnlockedMarkRead = r.bool()
	c.HeaderCacheLines = r.intField()
	c.StrideWords = r.intField()
	c.StartupCycles = r.i64()
	c.ShutdownCycles = r.i64()
	c.MaxCycles = r.i64()
	return c, r.done()
}

func encodeHeap(w *writer, h *heap.State) {
	w.i64(int64(h.Semi))
	w.i64(int64(h.Cur))
	w.u32(h.Alloc)
	w.i64(h.AllocCnt)
	w.count(len(h.Roots))
	for _, a := range h.Roots {
		w.u32(a)
	}
	w.count(len(h.Mem))
	for _, v := range h.Mem {
		w.u64(v)
	}
}

func decodeHeap(r *reader) (*heap.State, error) {
	h := &heap.State{
		Semi:     r.intField(),
		Cur:      r.intField(),
		Alloc:    r.u32(),
		AllocCnt: r.i64(),
	}
	if n := r.count(4); n > 0 {
		h.Roots = make([]uint32, n)
		for i := range h.Roots {
			h.Roots[i] = r.u32()
		}
	}
	if n := r.count(8); n > 0 {
		h.Mem = make([]uint64, n)
		for i := range h.Mem {
			h.Mem[i] = r.u64()
		}
	}
	return h, r.done()
}

func encodeSync(w *writer, s *syncblock.State) {
	w.i64(int64(s.Cores))
	w.u32(s.Scan)
	w.u32(s.Free)
	w.i64(int64(s.ScanOwner))
	w.i64(int64(s.FreeOwner))
	w.count(len(s.HeaderReg))
	for _, a := range s.HeaderReg {
		w.u32(a)
	}
	w.count(len(s.Busy))
	for _, b := range s.Busy {
		w.bool(b)
	}
	w.count(len(s.Barriers))
	for _, arr := range s.Barriers {
		w.bool(arr != nil)
		if arr != nil {
			w.count(len(arr))
			for _, b := range arr {
				w.bool(b)
			}
		}
	}
	w.i64(s.Stats.ScanAcquisitions)
	w.i64(s.Stats.FreeAcquisitions)
	w.i64(s.Stats.HeaderAcquisitions)
	w.i64(s.Stats.ScanConflicts)
	w.i64(s.Stats.FreeConflicts)
	w.i64(s.Stats.HeaderConflicts)
}

func decodeSync(r *reader) (*syncblock.State, error) {
	s := &syncblock.State{
		Cores:     r.intField(),
		Scan:      r.u32(),
		Free:      r.u32(),
		ScanOwner: r.intField(),
		FreeOwner: r.intField(),
	}
	if n := r.count(4); n > 0 {
		s.HeaderReg = make([]uint32, n)
		for i := range s.HeaderReg {
			s.HeaderReg[i] = r.u32()
		}
	}
	if n := r.count(1); n > 0 {
		s.Busy = make([]bool, n)
		for i := range s.Busy {
			s.Busy[i] = r.bool()
		}
	}
	if n := r.count(1); n > 0 {
		s.Barriers = make([][]bool, n)
		for i := range s.Barriers {
			if !r.bool() {
				continue
			}
			arr := make([]bool, r.count(1))
			for j := range arr {
				arr[j] = r.bool()
			}
			s.Barriers[i] = arr
		}
	}
	s.Stats.ScanAcquisitions = r.i64()
	s.Stats.FreeAcquisitions = r.i64()
	s.Stats.HeaderAcquisitions = r.i64()
	s.Stats.ScanConflicts = r.i64()
	s.Stats.FreeConflicts = r.i64()
	s.Stats.HeaderConflicts = r.i64()
	return s, r.done()
}

func encodeLoadBuffer(w *writer, b mem.LoadBuffer) {
	w.bool(b.Valid)
	w.bool(b.Accepted)
	w.bool(b.Ready)
	w.u32(b.Addr)
	w.u64(b.Data)
	w.i64(b.DoneAt)
}

func decodeLoadBuffer(r *reader) mem.LoadBuffer {
	return mem.LoadBuffer{
		Valid:    r.bool(),
		Accepted: r.bool(),
		Ready:    r.bool(),
		Addr:     r.u32(),
		Data:     r.u64(),
		DoneAt:   r.i64(),
	}
}

func encodeStoreQueue(w *writer, q []mem.StoreReq) {
	w.count(len(q))
	for _, s := range q {
		w.u32(s.Addr)
		w.u64(s.Data)
		w.i64(s.Seq)
	}
}

func decodeStoreQueue(r *reader) []mem.StoreReq {
	n := r.count(20)
	if n == 0 {
		return nil
	}
	q := make([]mem.StoreReq, n)
	for i := range q {
		q[i] = mem.StoreReq{Addr: r.u32(), Data: r.u64(), Seq: r.i64()}
	}
	return q
}

func encodeMem(w *writer, s *mem.State) {
	w.i64(s.Cycle)
	w.i64(int64(s.RR))
	w.i64(s.Seq)
	for _, v := range s.Stats.Accepted {
		w.i64(v)
	}
	w.i64(s.Stats.BusyCycles)
	w.i64(s.Stats.SaturatedCyc)
	w.i64(s.Stats.OrderDelays)
	w.i64(s.Stats.BankConflicts)
	w.i64(int64(s.Stats.PeakPending))
	w.i64(s.Stats.RejectedByBW)
	w.i64(s.Stats.TotalRequests)
	w.count(len(s.BusyUntil))
	for _, v := range s.BusyUntil {
		w.i64(v)
	}
	w.count(len(s.Cores))
	for _, c := range s.Cores {
		encodeLoadBuffer(w, c.HeaderLoad)
		encodeLoadBuffer(w, c.BodyLoad)
		encodeStoreQueue(w, c.HeaderStores)
		encodeStoreQueue(w, c.BodyStores)
	}
	w.count(len(s.Inflight))
	for _, f := range s.Inflight {
		w.u32(f.Addr)
		w.u64(f.Data)
		w.bool(f.Header)
		w.i64(f.DoneAt)
	}
	w.count(len(s.Completions))
	for _, v := range s.Completions {
		w.i64(v)
	}
}

func decodeMem(r *reader) (*mem.State, error) {
	s := &mem.State{
		Cycle: r.i64(),
		RR:    r.intField(),
		Seq:   r.i64(),
	}
	for i := range s.Stats.Accepted {
		s.Stats.Accepted[i] = r.i64()
	}
	s.Stats.BusyCycles = r.i64()
	s.Stats.SaturatedCyc = r.i64()
	s.Stats.OrderDelays = r.i64()
	s.Stats.BankConflicts = r.i64()
	s.Stats.PeakPending = r.intField()
	s.Stats.RejectedByBW = r.i64()
	s.Stats.TotalRequests = r.i64()
	if n := r.count(8); n > 0 {
		s.BusyUntil = make([]int64, n)
		for i := range s.BusyUntil {
			s.BusyUntil[i] = r.i64()
		}
	}
	// Two load buffers (23 bytes each) plus two queue counts.
	if n := r.count(2*23 + 2*4); n > 0 {
		s.Cores = make([]mem.CoreIOState, n)
		for i := range s.Cores {
			s.Cores[i] = mem.CoreIOState{
				HeaderLoad:   decodeLoadBuffer(r),
				BodyLoad:     decodeLoadBuffer(r),
				HeaderStores: decodeStoreQueue(r),
				BodyStores:   decodeStoreQueue(r),
			}
		}
	}
	if n := r.count(21); n > 0 {
		s.Inflight = make([]mem.InflightStore, n)
		for i := range s.Inflight {
			s.Inflight[i] = mem.InflightStore{
				Addr: r.u32(), Data: r.u64(), Header: r.bool(), DoneAt: r.i64(),
			}
		}
	}
	if n := r.count(8); n > 0 {
		s.Completions = make([]int64, n)
		for i := range s.Completions {
			s.Completions[i] = r.i64()
		}
	}
	return s, r.done()
}

func encodeCoreState(w *writer, c *machine.CoreState) {
	w.i64(int64(c.St))
	w.u32(c.ObjTo)
	w.u32(c.Backlink)
	w.u64(c.Attrs)
	w.i64(int64(c.Pi))
	w.i64(int64(c.Delta))
	w.i64(int64(c.BodyPos))
	w.i64(int64(c.BodyEnd))
	w.u64(c.DataWord)
	w.u32(c.ChildPtr)
	w.u64(c.ChildHdr)
	w.u32(c.NewPtr)
	w.u32(c.EvacAddr)
	w.u64(c.GrayHdr)
	w.i64(int64(c.RootIdx))
	w.bool(c.InRoots)
	w.i64(c.StartupLeft)
	w.i64(c.SleepUntil)
	encodeCoreStats(w, &c.Stats)
}

func decodeCoreState(r *reader) machine.CoreState {
	c := machine.CoreState{
		St:       r.intField(),
		ObjTo:    r.u32(),
		Backlink: r.u32(),
		Attrs:    r.u64(),
		Pi:       r.intField(),
		Delta:    r.intField(),
		BodyPos:  r.intField(),
		BodyEnd:  r.intField(),
		DataWord: r.u64(),
		ChildPtr: r.u32(),
		ChildHdr: r.u64(),
		NewPtr:   r.u32(),
		EvacAddr: r.u32(),
		GrayHdr:  r.u64(),
		RootIdx:  r.intField(),
	}
	c.InRoots = r.bool()
	c.StartupLeft = r.i64()
	c.SleepUntil = r.i64()
	c.Stats = decodeCoreStats(r)
	return c
}

func encodeCoreStats(w *writer, s *machine.CoreStats) {
	w.i64(s.ScanLockStall)
	w.i64(s.FreeLockStall)
	w.i64(s.HeaderLockStall)
	w.i64(s.BodyLoadStall)
	w.i64(s.BodyStoreStall)
	w.i64(s.HeaderLoadStall)
	w.i64(s.HeaderStoreStall)
	w.i64(s.ObjectsScanned)
	w.i64(s.ObjectsEvacuated)
	w.i64(s.Strides)
	w.i64(s.StrideTableStall)
	w.i64(s.PointersSeen)
	w.i64(s.WordsCopied)
	w.i64(s.FIFOHits)
	w.i64(s.FIFOMisses)
}

func decodeCoreStats(r *reader) machine.CoreStats {
	return machine.CoreStats{
		ScanLockStall:    r.i64(),
		FreeLockStall:    r.i64(),
		HeaderLockStall:  r.i64(),
		BodyLoadStall:    r.i64(),
		BodyStoreStall:   r.i64(),
		HeaderLoadStall:  r.i64(),
		HeaderStoreStall: r.i64(),
		ObjectsScanned:   r.i64(),
		ObjectsEvacuated: r.i64(),
		Strides:          r.i64(),
		StrideTableStall: r.i64(),
		PointersSeen:     r.i64(),
		WordsCopied:      r.i64(),
		FIFOHits:         r.i64(),
		FIFOMisses:       r.i64(),
	}
}

func encodeMachine(w *writer, st *machine.State) {
	w.i64(st.Cycle)
	w.i64(st.MaxCycles)
	w.i64(st.ScanStart)
	w.i64(st.ScanEnd)
	w.i64(st.EmptyCycles)
	w.i64(st.FIFODrops)
	w.i64(st.FFJumps)
	w.i64(st.FFSkipped)
	w.bool(st.ScanFrameValid)
	w.u64(st.ScanFrameHdr)
	w.i64(int64(st.ScanOff))
	w.bool(st.MutStarted)
	w.bool(st.NoFastForward)
	w.count(len(st.Cores))
	for i := range st.Cores {
		encodeCoreState(w, &st.Cores[i])
	}
	w.count(len(st.FIFO.Entries))
	for _, e := range st.FIFO.Entries {
		w.u32(e.Addr)
		w.u64(e.Hdr)
	}
	w.i64(st.FIFO.Hits)
	w.i64(st.FIFO.Misses)
	w.i64(st.FIFO.Drops)
	w.i64(int64(st.FIFO.MaxDepth))
	w.count(len(st.HeaderCache.Lines))
	for _, l := range st.HeaderCache.Lines {
		w.bool(l.Valid)
		w.u32(l.Addr)
		w.u64(l.Data)
	}
	w.i64(st.HeaderCache.Hits)
	w.i64(st.HeaderCache.Misses)
	w.count(len(st.Strides))
	for _, e := range st.Strides {
		w.bool(e.Used)
		w.u32(e.ObjTo)
		w.u64(e.Attrs)
		w.i64(int64(e.Outstanding))
		w.bool(e.Final)
	}
}

func decodeMachine(r *reader, st *machine.State) error {
	st.Cycle = r.i64()
	st.MaxCycles = r.i64()
	st.ScanStart = r.i64()
	st.ScanEnd = r.i64()
	st.EmptyCycles = r.i64()
	st.FIFODrops = r.i64()
	st.FFJumps = r.i64()
	st.FFSkipped = r.i64()
	st.ScanFrameValid = r.bool()
	st.ScanFrameHdr = r.u64()
	st.ScanOff = r.intField()
	st.MutStarted = r.bool()
	st.NoFastForward = r.bool()
	// A core state is 18 fixed fields plus 15 stat counters; 100 is a safe
	// lower bound on its encoded size.
	if n := r.count(100); n > 0 {
		st.Cores = make([]machine.CoreState, n)
		for i := range st.Cores {
			st.Cores[i] = decodeCoreState(r)
		}
	}
	if n := r.count(12); n > 0 {
		st.FIFO.Entries = make([]machine.FIFOEntryState, n)
		for i := range st.FIFO.Entries {
			st.FIFO.Entries[i] = machine.FIFOEntryState{Addr: r.u32(), Hdr: r.u64()}
		}
	}
	st.FIFO.Hits = r.i64()
	st.FIFO.Misses = r.i64()
	st.FIFO.Drops = r.i64()
	st.FIFO.MaxDepth = r.intField()
	if n := r.count(13); n > 0 {
		st.HeaderCache.Lines = make([]machine.HeaderCacheLineState, n)
		for i := range st.HeaderCache.Lines {
			st.HeaderCache.Lines[i] = machine.HeaderCacheLineState{
				Valid: r.bool(), Addr: r.u32(), Data: r.u64(),
			}
		}
	}
	st.HeaderCache.Hits = r.i64()
	st.HeaderCache.Misses = r.i64()
	if n := r.count(22); n > 0 {
		st.Strides = make([]machine.StrideEntryState, n)
		for i := range st.Strides {
			st.Strides[i] = machine.StrideEntryState{
				Used: r.bool(), ObjTo: r.u32(), Attrs: r.u64(),
				Outstanding: r.intField(), Final: r.bool(),
			}
		}
	}
	return r.done()
}
