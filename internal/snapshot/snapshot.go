package snapshot

import (
	"fmt"
	"os"
	"path/filepath"

	"hwgc/internal/heap"
	"hwgc/internal/machine"
	"hwgc/internal/mem"
	"hwgc/internal/syncblock"
)

// Encode serializes a captured machine state.
func Encode(st *machine.State) []byte {
	out := append([]byte(nil), magic...)
	var hdr writer
	hdr.u32(version)
	out = append(out, hdr.buf...)

	var w writer
	encodeConfig(&w, st.Config)
	out = w.frame(out, tagConfig)

	w = writer{}
	encodeHeap(&w, st.Heap)
	out = w.frame(out, tagHeap)

	w = writer{}
	encodeSync(&w, st.Sync)
	out = w.frame(out, tagSync)

	w = writer{}
	encodeMem(&w, st.Mem)
	out = w.frame(out, tagMem)

	w = writer{}
	encodeMachine(&w, st)
	out = w.frame(out, tagMachine)
	return out
}

// Decode parses a serialized machine state, validating framing and
// checksums. The result is structurally sound but not semantically
// validated — machine.RestoreMachine performs the cross-field checks.
func Decode(data []byte) (*machine.State, error) {
	r := &reader{data: data}
	if got := r.take(len(magic)); r.err != nil {
		return nil, r.err
	} else if string(got) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", got)
	}
	v := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if v < minVersion || v > version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (have %d..%d)", v, minVersion, version)
	}

	st := &machine.State{}
	sec, err := readSection(r, tagConfig)
	if err != nil {
		return nil, err
	}
	if st.Config, err = decodeConfig(sec, v); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagHeap); err != nil {
		return nil, err
	}
	if st.Heap, err = decodeHeap(sec); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagSync); err != nil {
		return nil, err
	}
	if st.Sync, err = decodeSync(sec); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagMem); err != nil {
		return nil, err
	}
	if st.Mem, err = decodeMem(sec, v); err != nil {
		return nil, err
	}
	if sec, err = readSection(r, tagMachine); err != nil {
		return nil, err
	}
	if err = decodeMachine(sec, st, v); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last section", r.remaining())
	}
	return st, nil
}

// WriteFile atomically writes the encoded state to path (temp file +
// rename), so a crash mid-write never leaves a torn snapshot behind.
func WriteFile(path string, st *machine.State) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(Encode(st)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*machine.State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func encodeConfig(w *writer, c machine.Config) {
	w.i64(int64(c.Cores))
	w.i64(int64(c.MemLatency))
	w.i64(int64(c.ExtraMemLatency))
	w.i64(int64(c.MemBandwidth))
	w.i64(int64(c.MemStoreQueueDepth))
	w.i64(int64(c.MemBanks))
	w.i64(int64(c.MemBankBusy))
	w.i64(int64(c.FIFOCapacity))
	w.bool(c.DisableFIFO)
	w.bool(c.OptUnlockedMarkRead)
	w.i64(int64(c.HeaderCacheLines))
	w.i64(int64(c.StrideWords))
	w.i64(c.StartupCycles)
	w.i64(c.ShutdownCycles)
	w.i64(c.MaxCycles)
	// Version 2: concurrent-mutator knobs.
	w.u8(encodeBarrierMode(c.BarrierMode))
	w.i64(c.MutatorOps)
	w.i64(c.MutatorAllocs)
	w.i64(c.MutatorSeed)
	w.i64(int64(c.MutatorPeriod))
	// Version 3: memory-hierarchy knobs.
	w.i64(int64(c.NUMADomains))
	w.i64(int64(c.NUMARemotePenalty))
	w.i64(int64(c.NUMAInterleave))
	w.i64(int64(c.NUMABandwidth))
	w.u8(encodePlacement(c.NUMAPlacement))
	w.i64(int64(c.L1Sets))
	w.i64(int64(c.L1Ways))
	w.i64(int64(c.L2Sets))
	w.i64(int64(c.L2Ways))
	w.i64(int64(c.MSHRs))
	w.i64(int64(c.CacheLineWords))
}

// encodePlacement maps the NUMA-placement enum to a stable wire byte.
func encodePlacement(p machine.NUMAPlacement) uint8 {
	if p == machine.PlacementLocal {
		return 1
	}
	return 0
}

func decodePlacement(v uint8) (machine.NUMAPlacement, error) {
	switch v {
	case 0:
		return machine.PlacementNaive, nil
	case 1:
		return machine.PlacementLocal, nil
	}
	return machine.PlacementNaive, fmt.Errorf("snapshot: unknown NUMA placement byte %d", v)
}

// encodeBarrierMode maps the barrier-mode enum to a stable wire byte.
func encodeBarrierMode(b machine.BarrierMode) uint8 {
	switch b {
	case machine.BarrierSATB:
		return 1
	case machine.BarrierIncUpdate:
		return 2
	default:
		return 0
	}
}

func decodeBarrierMode(v uint8) (machine.BarrierMode, error) {
	switch v {
	case 0:
		return machine.BarrierNone, nil
	case 1:
		return machine.BarrierSATB, nil
	case 2:
		return machine.BarrierIncUpdate, nil
	}
	return machine.BarrierNone, fmt.Errorf("snapshot: unknown barrier mode byte %d", v)
}

func decodeConfig(r *reader, v uint32) (machine.Config, error) {
	c := machine.Config{
		Cores:              r.intField(),
		MemLatency:         r.intField(),
		ExtraMemLatency:    r.intField(),
		MemBandwidth:       r.intField(),
		MemStoreQueueDepth: r.intField(),
		MemBanks:           r.intField(),
		MemBankBusy:        r.intField(),
		FIFOCapacity:       r.intField(),
	}
	c.DisableFIFO = r.bool()
	c.OptUnlockedMarkRead = r.bool()
	c.HeaderCacheLines = r.intField()
	c.StrideWords = r.intField()
	c.StartupCycles = r.i64()
	c.ShutdownCycles = r.i64()
	c.MaxCycles = r.i64()
	if v >= 2 {
		mode, err := decodeBarrierMode(r.u8())
		if err != nil && r.err == nil {
			return c, err
		}
		c.BarrierMode = mode
		c.MutatorOps = r.i64()
		c.MutatorAllocs = r.i64()
		c.MutatorSeed = r.i64()
		c.MutatorPeriod = r.intField()
	}
	if v >= 3 {
		c.NUMADomains = r.intField()
		c.NUMARemotePenalty = r.intField()
		c.NUMAInterleave = r.intField()
		c.NUMABandwidth = r.intField()
		place, err := decodePlacement(r.u8())
		if err != nil && r.err == nil {
			return c, err
		}
		c.NUMAPlacement = place
		c.L1Sets = r.intField()
		c.L1Ways = r.intField()
		c.L2Sets = r.intField()
		c.L2Ways = r.intField()
		c.MSHRs = r.intField()
		c.CacheLineWords = r.intField()
	}
	return c, r.done()
}

func encodeHeap(w *writer, h *heap.State) {
	w.i64(int64(h.Semi))
	w.i64(int64(h.Cur))
	w.u32(h.Alloc)
	w.i64(h.AllocCnt)
	w.count(len(h.Roots))
	for _, a := range h.Roots {
		w.u32(a)
	}
	w.count(len(h.Mem))
	for _, v := range h.Mem {
		w.u64(v)
	}
}

func decodeHeap(r *reader) (*heap.State, error) {
	h := &heap.State{
		Semi:     r.intField(),
		Cur:      r.intField(),
		Alloc:    r.u32(),
		AllocCnt: r.i64(),
	}
	if n := r.count(4); n > 0 {
		h.Roots = make([]uint32, n)
		for i := range h.Roots {
			h.Roots[i] = r.u32()
		}
	}
	if n := r.count(8); n > 0 {
		h.Mem = make([]uint64, n)
		for i := range h.Mem {
			h.Mem[i] = r.u64()
		}
	}
	return h, r.done()
}

func encodeSync(w *writer, s *syncblock.State) {
	w.i64(int64(s.Cores))
	w.u32(s.Scan)
	w.u32(s.Free)
	w.i64(int64(s.ScanOwner))
	w.i64(int64(s.FreeOwner))
	w.count(len(s.HeaderReg))
	for _, a := range s.HeaderReg {
		w.u32(a)
	}
	w.count(len(s.Busy))
	for _, b := range s.Busy {
		w.bool(b)
	}
	w.count(len(s.Barriers))
	for _, arr := range s.Barriers {
		w.bool(arr != nil)
		if arr != nil {
			w.count(len(arr))
			for _, b := range arr {
				w.bool(b)
			}
		}
	}
	w.i64(s.Stats.ScanAcquisitions)
	w.i64(s.Stats.FreeAcquisitions)
	w.i64(s.Stats.HeaderAcquisitions)
	w.i64(s.Stats.ScanConflicts)
	w.i64(s.Stats.FreeConflicts)
	w.i64(s.Stats.HeaderConflicts)
}

func decodeSync(r *reader) (*syncblock.State, error) {
	s := &syncblock.State{
		Cores:     r.intField(),
		Scan:      r.u32(),
		Free:      r.u32(),
		ScanOwner: r.intField(),
		FreeOwner: r.intField(),
	}
	if n := r.count(4); n > 0 {
		s.HeaderReg = make([]uint32, n)
		for i := range s.HeaderReg {
			s.HeaderReg[i] = r.u32()
		}
	}
	if n := r.count(1); n > 0 {
		s.Busy = make([]bool, n)
		for i := range s.Busy {
			s.Busy[i] = r.bool()
		}
	}
	if n := r.count(1); n > 0 {
		s.Barriers = make([][]bool, n)
		for i := range s.Barriers {
			if !r.bool() {
				continue
			}
			arr := make([]bool, r.count(1))
			for j := range arr {
				arr[j] = r.bool()
			}
			s.Barriers[i] = arr
		}
	}
	s.Stats.ScanAcquisitions = r.i64()
	s.Stats.FreeAcquisitions = r.i64()
	s.Stats.HeaderAcquisitions = r.i64()
	s.Stats.ScanConflicts = r.i64()
	s.Stats.FreeConflicts = r.i64()
	s.Stats.HeaderConflicts = r.i64()
	return s, r.done()
}

func encodeLoadBuffer(w *writer, b mem.LoadBuffer) {
	w.bool(b.Valid)
	w.bool(b.Accepted)
	w.bool(b.Ready)
	w.u32(b.Addr)
	w.u64(b.Data)
	w.i64(b.DoneAt)
	// Version 3: the completion class of an accepted load.
	w.u8(b.Class)
}

func decodeLoadBuffer(r *reader, v uint32) mem.LoadBuffer {
	b := mem.LoadBuffer{
		Valid:    r.bool(),
		Accepted: r.bool(),
		Ready:    r.bool(),
		Addr:     r.u32(),
		Data:     r.u64(),
		DoneAt:   r.i64(),
	}
	if v >= 3 {
		b.Class = r.u8()
	}
	return b
}

func encodeStoreQueue(w *writer, q []mem.StoreReq) {
	w.count(len(q))
	for _, s := range q {
		w.u32(s.Addr)
		w.u64(s.Data)
		w.i64(s.Seq)
	}
}

func decodeStoreQueue(r *reader) []mem.StoreReq {
	n := r.count(20)
	if n == 0 {
		return nil
	}
	q := make([]mem.StoreReq, n)
	for i := range q {
		q[i] = mem.StoreReq{Addr: r.u32(), Data: r.u64(), Seq: r.i64()}
	}
	return q
}

func encodeMem(w *writer, s *mem.State) {
	w.i64(s.Cycle)
	w.i64(int64(s.RR))
	w.i64(s.Seq)
	for _, v := range s.Stats.Accepted {
		w.i64(v)
	}
	w.i64(s.Stats.BusyCycles)
	w.i64(s.Stats.SaturatedCyc)
	w.i64(s.Stats.OrderDelays)
	w.i64(s.Stats.BankConflicts)
	w.i64(int64(s.Stats.PeakPending))
	w.i64(s.Stats.RejectedByBW)
	w.i64(s.Stats.TotalRequests)
	w.count(len(s.BusyUntil))
	for _, v := range s.BusyUntil {
		w.i64(v)
	}
	w.count(len(s.Cores))
	for _, c := range s.Cores {
		encodeLoadBuffer(w, c.HeaderLoad)
		encodeLoadBuffer(w, c.BodyLoad)
		encodeStoreQueue(w, c.HeaderStores)
		encodeStoreQueue(w, c.BodyStores)
	}
	w.count(len(s.Inflight))
	for _, f := range s.Inflight {
		w.u32(f.Addr)
		w.u64(f.Data)
		w.bool(f.Header)
		w.i64(f.DoneAt)
	}
	w.count(len(s.Completions))
	for _, v := range s.Completions {
		w.i64(v)
	}
	// Version 3: memory-hierarchy counters, completion queues and cache tags.
	w.i64(s.Stats.LocalAccesses)
	w.i64(s.Stats.RemoteAccesses)
	w.i64(s.Stats.DomainConflicts)
	w.i64(s.Stats.L1Hits)
	w.i64(s.Stats.L1Misses)
	w.i64(s.Stats.L2Hits)
	w.i64(s.Stats.L2Misses)
	w.i64(s.Stats.MSHRFullStalls)
	for _, comp := range [][]int64{s.RemoteComp, s.L1Comp, s.L2Comp} {
		w.count(len(comp))
		for _, v := range comp {
			w.i64(v)
		}
	}
	w.i64(s.LRUTick)
	w.count(len(s.L1))
	for _, lines := range s.L1 {
		encodeCacheLines(w, lines)
	}
	encodeCacheLines(w, s.L2)
}

func encodeCacheLines(w *writer, lines []mem.CacheLineState) {
	w.count(len(lines))
	for _, l := range lines {
		w.bool(l.Valid)
		w.i64(l.Tag)
		w.i64(l.Last)
	}
}

// decodeCacheLines reads one tag array; each line is 17 bytes.
func decodeCacheLines(r *reader) []mem.CacheLineState {
	n := r.count(17)
	if n == 0 {
		return nil
	}
	lines := make([]mem.CacheLineState, n)
	for i := range lines {
		lines[i] = mem.CacheLineState{Valid: r.bool(), Tag: r.i64(), Last: r.i64()}
	}
	return lines
}

func decodeMem(r *reader, v uint32) (*mem.State, error) {
	s := &mem.State{
		Cycle: r.i64(),
		RR:    r.intField(),
		Seq:   r.i64(),
	}
	for i := range s.Stats.Accepted {
		s.Stats.Accepted[i] = r.i64()
	}
	s.Stats.BusyCycles = r.i64()
	s.Stats.SaturatedCyc = r.i64()
	s.Stats.OrderDelays = r.i64()
	s.Stats.BankConflicts = r.i64()
	s.Stats.PeakPending = r.intField()
	s.Stats.RejectedByBW = r.i64()
	s.Stats.TotalRequests = r.i64()
	if n := r.count(8); n > 0 {
		s.BusyUntil = make([]int64, n)
		for i := range s.BusyUntil {
			s.BusyUntil[i] = r.i64()
		}
	}
	// Two load buffers (23 bytes each) plus two queue counts.
	if n := r.count(2*23 + 2*4); n > 0 {
		s.Cores = make([]mem.CoreIOState, n)
		for i := range s.Cores {
			s.Cores[i] = mem.CoreIOState{
				HeaderLoad:   decodeLoadBuffer(r, v),
				BodyLoad:     decodeLoadBuffer(r, v),
				HeaderStores: decodeStoreQueue(r),
				BodyStores:   decodeStoreQueue(r),
			}
		}
	}
	if n := r.count(21); n > 0 {
		s.Inflight = make([]mem.InflightStore, n)
		for i := range s.Inflight {
			s.Inflight[i] = mem.InflightStore{
				Addr: r.u32(), Data: r.u64(), Header: r.bool(), DoneAt: r.i64(),
			}
		}
	}
	if n := r.count(8); n > 0 {
		s.Completions = make([]int64, n)
		for i := range s.Completions {
			s.Completions[i] = r.i64()
		}
	}
	if v >= 3 {
		s.Stats.LocalAccesses = r.i64()
		s.Stats.RemoteAccesses = r.i64()
		s.Stats.DomainConflicts = r.i64()
		s.Stats.L1Hits = r.i64()
		s.Stats.L1Misses = r.i64()
		s.Stats.L2Hits = r.i64()
		s.Stats.L2Misses = r.i64()
		s.Stats.MSHRFullStalls = r.i64()
		for _, comp := range []*[]int64{&s.RemoteComp, &s.L1Comp, &s.L2Comp} {
			if n := r.count(8); n > 0 {
				*comp = make([]int64, n)
				for i := range *comp {
					(*comp)[i] = r.i64()
				}
			}
		}
		s.LRUTick = r.i64()
		// One L1 tag array per core; each holds at least a 4-byte count.
		if n := r.count(4); n > 0 {
			s.L1 = make([][]mem.CacheLineState, n)
			for i := range s.L1 {
				s.L1[i] = decodeCacheLines(r)
			}
		}
		s.L2 = decodeCacheLines(r)
	}
	return s, r.done()
}

func encodeCoreState(w *writer, c *machine.CoreState) {
	w.i64(int64(c.St))
	w.u32(c.ObjTo)
	w.u32(c.Backlink)
	w.u64(c.Attrs)
	w.i64(int64(c.Pi))
	w.i64(int64(c.Delta))
	w.i64(int64(c.BodyPos))
	w.i64(int64(c.BodyEnd))
	w.u64(c.DataWord)
	w.u32(c.ChildPtr)
	w.u64(c.ChildHdr)
	w.u32(c.NewPtr)
	w.u32(c.EvacAddr)
	w.u64(c.GrayHdr)
	w.i64(int64(c.RootIdx))
	w.bool(c.InRoots)
	w.i64(c.StartupLeft)
	w.i64(c.SleepUntil)
	encodeCoreStats(w, &c.Stats)
}

func decodeCoreState(r *reader) machine.CoreState {
	c := machine.CoreState{
		St:       r.intField(),
		ObjTo:    r.u32(),
		Backlink: r.u32(),
		Attrs:    r.u64(),
		Pi:       r.intField(),
		Delta:    r.intField(),
		BodyPos:  r.intField(),
		BodyEnd:  r.intField(),
		DataWord: r.u64(),
		ChildPtr: r.u32(),
		ChildHdr: r.u64(),
		NewPtr:   r.u32(),
		EvacAddr: r.u32(),
		GrayHdr:  r.u64(),
		RootIdx:  r.intField(),
	}
	c.InRoots = r.bool()
	c.StartupLeft = r.i64()
	c.SleepUntil = r.i64()
	c.Stats = decodeCoreStats(r)
	return c
}

func encodeCoreStats(w *writer, s *machine.CoreStats) {
	w.i64(s.ScanLockStall)
	w.i64(s.FreeLockStall)
	w.i64(s.HeaderLockStall)
	w.i64(s.BodyLoadStall)
	w.i64(s.BodyStoreStall)
	w.i64(s.HeaderLoadStall)
	w.i64(s.HeaderStoreStall)
	w.i64(s.ObjectsScanned)
	w.i64(s.ObjectsEvacuated)
	w.i64(s.Strides)
	w.i64(s.StrideTableStall)
	w.i64(s.PointersSeen)
	w.i64(s.WordsCopied)
	w.i64(s.FIFOHits)
	w.i64(s.FIFOMisses)
}

func decodeCoreStats(r *reader) machine.CoreStats {
	return machine.CoreStats{
		ScanLockStall:    r.i64(),
		FreeLockStall:    r.i64(),
		HeaderLockStall:  r.i64(),
		BodyLoadStall:    r.i64(),
		BodyStoreStall:   r.i64(),
		HeaderLoadStall:  r.i64(),
		HeaderStoreStall: r.i64(),
		ObjectsScanned:   r.i64(),
		ObjectsEvacuated: r.i64(),
		Strides:          r.i64(),
		StrideTableStall: r.i64(),
		PointersSeen:     r.i64(),
		WordsCopied:      r.i64(),
		FIFOHits:         r.i64(),
		FIFOMisses:       r.i64(),
	}
}

func encodeMachine(w *writer, st *machine.State) {
	w.i64(st.Cycle)
	w.i64(st.MaxCycles)
	w.i64(st.ScanStart)
	w.i64(st.ScanEnd)
	w.i64(st.EmptyCycles)
	w.i64(st.FIFODrops)
	w.i64(st.FFJumps)
	w.i64(st.FFSkipped)
	w.bool(st.ScanFrameValid)
	w.u64(st.ScanFrameHdr)
	w.i64(int64(st.ScanOff))
	w.bool(st.MutStarted)
	w.bool(st.NoFastForward)
	w.count(len(st.Cores))
	for i := range st.Cores {
		encodeCoreState(w, &st.Cores[i])
	}
	w.count(len(st.FIFO.Entries))
	for _, e := range st.FIFO.Entries {
		w.u32(e.Addr)
		w.u64(e.Hdr)
	}
	w.i64(st.FIFO.Hits)
	w.i64(st.FIFO.Misses)
	w.i64(st.FIFO.Drops)
	w.i64(int64(st.FIFO.MaxDepth))
	w.count(len(st.HeaderCache.Lines))
	for _, l := range st.HeaderCache.Lines {
		w.bool(l.Valid)
		w.u32(l.Addr)
		w.u64(l.Data)
	}
	w.i64(st.HeaderCache.Hits)
	w.i64(st.HeaderCache.Misses)
	w.count(len(st.Strides))
	for _, e := range st.Strides {
		w.bool(e.Used)
		w.u32(e.ObjTo)
		w.u64(e.Attrs)
		w.i64(int64(e.Outstanding))
		w.bool(e.Final)
	}
	// Version 2: the built-in concurrent mutator's port.
	w.bool(st.Mut != nil)
	if m := st.Mut; m != nil {
		w.count(len(m.Regs))
		for _, a := range m.Regs {
			w.u32(a)
		}
		w.u64(m.LastData)
		w.i64(int64(m.St))
		encodeMutOp(w, &m.Op)
		w.i64(m.Seq)
		w.i64(int64(m.WaitLeft))
		w.i64(m.OpStart)
		w.u32(m.AllocBase)
		w.i64(int64(m.InitIdx))
		w.u32(m.ShadeTarget)
		w.count(len(m.Shaded))
		for _, a := range m.Shaded {
			w.u32(a)
		}
		encodeMutatorStats(w, &m.Stats)
		w.u64(m.ChurnRng)
		w.i64(m.ChurnAllocs)
		w.i64(m.LastWork)
	}
}

func encodeMutOp(w *writer, op *machine.MutOp) {
	w.i64(int64(op.Kind))
	w.i64(int64(op.Reg))
	w.i64(int64(op.Reg2))
	w.i64(int64(op.Slot))
	w.i64(int64(op.RootIdx))
	w.i64(int64(op.Pi))
	w.i64(int64(op.Delta))
	w.u64(op.Data)
}

func decodeMutOp(r *reader) machine.MutOp {
	return machine.MutOp{
		Kind:    machine.MutKind(r.intField()),
		Reg:     r.intField(),
		Reg2:    r.intField(),
		Slot:    r.intField(),
		RootIdx: r.intField(),
		Pi:      r.intField(),
		Delta:   r.intField(),
		Data:    r.u64(),
	}
}

func encodeMutatorStats(w *writer, s *machine.MutatorStats) {
	w.i64(s.Ops)
	w.i64(s.Allocs)
	w.i64(s.StallCycles)
	w.i64(s.MaxOpLatency)
	w.i64(s.BarrierStalls)
	w.i64(s.AllocLock)
	w.i64(s.FramesSkipped)
	w.i64(s.PtrStores)
	w.i64(s.BarrierInvocations)
	w.i64(s.BarrierCycles)
	w.i64(s.ShadedObjects)
	w.i64(s.FloatingObjects)
	w.i64(s.FloatingWords)
	w.i64(s.MarkTermCycles)
}

func decodeMutatorStats(r *reader) machine.MutatorStats {
	return machine.MutatorStats{
		Ops:                r.i64(),
		Allocs:             r.i64(),
		StallCycles:        r.i64(),
		MaxOpLatency:       r.i64(),
		BarrierStalls:      r.i64(),
		AllocLock:          r.i64(),
		FramesSkipped:      r.i64(),
		PtrStores:          r.i64(),
		BarrierInvocations: r.i64(),
		BarrierCycles:      r.i64(),
		ShadedObjects:      r.i64(),
		FloatingObjects:    r.i64(),
		FloatingWords:      r.i64(),
		MarkTermCycles:     r.i64(),
	}
}

func decodeMachine(r *reader, st *machine.State, v uint32) error {
	st.Cycle = r.i64()
	st.MaxCycles = r.i64()
	st.ScanStart = r.i64()
	st.ScanEnd = r.i64()
	st.EmptyCycles = r.i64()
	st.FIFODrops = r.i64()
	st.FFJumps = r.i64()
	st.FFSkipped = r.i64()
	st.ScanFrameValid = r.bool()
	st.ScanFrameHdr = r.u64()
	st.ScanOff = r.intField()
	st.MutStarted = r.bool()
	st.NoFastForward = r.bool()
	// A core state is 18 fixed fields plus 15 stat counters; 100 is a safe
	// lower bound on its encoded size.
	if n := r.count(100); n > 0 {
		st.Cores = make([]machine.CoreState, n)
		for i := range st.Cores {
			st.Cores[i] = decodeCoreState(r)
		}
	}
	if n := r.count(12); n > 0 {
		st.FIFO.Entries = make([]machine.FIFOEntryState, n)
		for i := range st.FIFO.Entries {
			st.FIFO.Entries[i] = machine.FIFOEntryState{Addr: r.u32(), Hdr: r.u64()}
		}
	}
	st.FIFO.Hits = r.i64()
	st.FIFO.Misses = r.i64()
	st.FIFO.Drops = r.i64()
	st.FIFO.MaxDepth = r.intField()
	if n := r.count(13); n > 0 {
		st.HeaderCache.Lines = make([]machine.HeaderCacheLineState, n)
		for i := range st.HeaderCache.Lines {
			st.HeaderCache.Lines[i] = machine.HeaderCacheLineState{
				Valid: r.bool(), Addr: r.u32(), Data: r.u64(),
			}
		}
	}
	st.HeaderCache.Hits = r.i64()
	st.HeaderCache.Misses = r.i64()
	if n := r.count(22); n > 0 {
		st.Strides = make([]machine.StrideEntryState, n)
		for i := range st.Strides {
			st.Strides[i] = machine.StrideEntryState{
				Used: r.bool(), ObjTo: r.u32(), Attrs: r.u64(),
				Outstanding: r.intField(), Final: r.bool(),
			}
		}
	}
	if v >= 2 && r.bool() {
		m := &machine.MutState{}
		if n := r.count(4); n > 0 {
			m.Regs = make([]uint32, n)
			for i := range m.Regs {
				m.Regs[i] = r.u32()
			}
		}
		m.LastData = r.u64()
		m.St = r.intField()
		m.Op = decodeMutOp(r)
		m.Seq = r.i64()
		m.WaitLeft = r.intField()
		m.OpStart = r.i64()
		m.AllocBase = r.u32()
		m.InitIdx = r.intField()
		m.ShadeTarget = r.u32()
		if n := r.count(4); n > 0 {
			m.Shaded = make([]uint32, n)
			for i := range m.Shaded {
				m.Shaded[i] = r.u32()
			}
		}
		m.Stats = decodeMutatorStats(r)
		m.ChurnRng = r.u64()
		m.ChurnAllocs = r.i64()
		m.LastWork = r.i64()
		st.Mut = m
	}
	return r.done()
}
