package snapshot

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"

	"hwgc/internal/machine"
	"hwgc/internal/workload"
)

// captureState runs a collection to a checkpoint and snapshots it.
func captureState(t testing.TB, bench string, cfg machine.Config, cycles int64) *machine.State {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Plan(1, 42).BuildHeap(2.0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginCollect()
	if done, err := m.StepCycles(cycles); err != nil {
		t.Fatal(err)
	} else if done {
		t.Fatalf("collection finished before cycle %d", cycles)
	}
	st, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, cfg := range []machine.Config{
		{Cores: 1},
		{Cores: 4, HeaderCacheLines: 64},
		{Cores: 8, StrideWords: 16, MemBanks: 4},
		{Cores: 4, MutatorOps: 1 << 40},
		{Cores: 4, MutatorOps: 1 << 40, BarrierMode: machine.BarrierSATB},
		{Cores: 4, MutatorOps: 1 << 40, BarrierMode: machine.BarrierIncUpdate},
	} {
		st := captureState(t, "jlisp", cfg, 200)
		data := Encode(st)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decode (%d cores): %v", cfg.Cores, err)
		}
		if !reflect.DeepEqual(st, got) {
			t.Fatalf("round trip not identical (%d cores): %v", cfg.Cores, Diff(st, got))
		}
		// And the decoded state must actually restore and resume.
		m, err := machine.RestoreMachine(got)
		if err != nil {
			t.Fatalf("restore (%d cores): %v", cfg.Cores, err)
		}
		if _, err := m.Resume(); err != nil {
			t.Fatalf("resume (%d cores): %v", cfg.Cores, err)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	st := captureState(t, "jlisp", machine.Config{Cores: 2}, 100)
	data := Encode(st)

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, len(magic), len(magic) + 4, len(data) / 2, len(data) - 1} {
			if _, err := Decode(data[:n]); err == nil {
				t.Errorf("truncation to %d bytes decoded without error", n)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] ^= 0xff
		if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("bad magic: err = %v", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[len(magic):], version+1)
		if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("version skew: err = %v", err)
		}
	})
	t.Run("payload-bit-flip", func(t *testing.T) {
		// Flipping any payload bit must break a CRC (or the framing).
		for _, off := range []int{20, 50, 100, len(data) - 10} {
			bad := append([]byte(nil), data...)
			bad[off] ^= 1
			if _, err := Decode(bad); err == nil {
				t.Errorf("bit flip at %d decoded without error", off)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), data...), 0xde, 0xad)); err == nil {
			t.Error("trailing bytes decoded without error")
		}
	})
}

func TestDecodeBoundsAllocations(t *testing.T) {
	// A tiny input claiming a huge element count must error out instead of
	// attempting the allocation.
	var w writer
	w.u32(version)
	data := append([]byte(magic), w.buf...)
	var sec writer
	encodeConfig(&sec, machine.Config{Cores: 1})
	data = sec.frame(data, tagConfig)
	var hp writer
	hp.i64(64)         // semi
	hp.i64(0)          // cur
	hp.u32(1)          // alloc
	hp.i64(0)          // allocCnt
	hp.u32(0xffffffff) // absurd root count with no bytes behind it
	data = hp.frame(data, tagHeap)
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("oversized count: err = %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	st := captureState(t, "jlisp", machine.Config{Cores: 2}, 100)
	path := t.TempDir() + "/state.snap"
	if err := WriteFile(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatal("file round trip not identical")
	}
}

func TestDiff(t *testing.T) {
	a := captureState(t, "jlisp", machine.Config{Cores: 2}, 100)
	b := captureState(t, "jlisp", machine.Config{Cores: 2}, 100)
	if d := Diff(a, b); len(d) != 0 {
		t.Fatalf("identical states diff: %v", d)
	}
	b.Cycle += 5
	b.Cores[1].Stats.ObjectsScanned++
	b.Heap.Mem[10] ^= 1
	d := Diff(a, b)
	if len(d) != 3 {
		t.Fatalf("want 3 diffs, got %v", d)
	}
	joined := strings.Join(d, "\n")
	for _, want := range []string{"Cycle:", "Cores[1].Stats.ObjectsScanned:", "Heap.Mem[10]:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff output missing %q:\n%s", want, joined)
		}
	}

	// The ignore list masks top-level fields.
	b2 := captureState(t, "jlisp", machine.Config{Cores: 2, MemLatency: 5}, 100)
	d = Diff(a, b2, "Config")
	for _, line := range d {
		if strings.HasPrefix(line, "Config") {
			t.Errorf("ignored field leaked into diff: %s", line)
		}
	}

	// Output is capped.
	c := captureState(t, "jlisp", machine.Config{Cores: 2}, 100)
	for i := range c.Heap.Mem {
		c.Heap.Mem[i] ^= 0xffff
	}
	d = Diff(a, c)
	if len(d) != maxDiffs+1 || !strings.Contains(d[maxDiffs], "more") {
		t.Fatalf("cap not applied: %d lines, last %q", len(d), d[len(d)-1])
	}
}

// TestDecodeVersion1Fixture pins on-disk back-compat: the committed
// testdata snapshot was written by the version-1 encoder (before the
// concurrent-mutator fields existed) and must keep decoding, restoring and
// resuming to the bit-identical result of an uninterrupted run.
//
// Fixture recipe (burned into the file, do not regenerate with the current
// encoder): workload jlisp, Plan(1, 42).BuildHeap(2.0), machine.Config{
// Cores: 4, HeaderCacheLines: 64}, BeginCollect, StepCycles(500), Snapshot.
func TestDecodeVersion1Fixture(t *testing.T) {
	gz, err := os.ReadFile("testdata/v1-jlisp-c4.snap.gz")
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != 1 {
		t.Fatalf("fixture declares version %d, want 1", v)
	}

	st, err := Decode(data)
	if err != nil {
		t.Fatalf("decoding the v1 fixture: %v", err)
	}
	if st.Cycle != 500 {
		t.Fatalf("fixture captured at cycle %d, want 500", st.Cycle)
	}

	// The v1 state must survive a re-encode at the current version.
	up, err := Decode(Encode(st))
	if err != nil {
		t.Fatalf("re-encoded fixture failed to decode: %v", err)
	}
	if !reflect.DeepEqual(st, up) {
		t.Fatalf("fixture state changed across the version upgrade: %v", Diff(st, up))
	}

	// Restoring and resuming must reproduce the uninterrupted run exactly.
	m, err := machine.RestoreMachine(st)
	if err != nil {
		t.Fatalf("restoring the v1 fixture: %v", err)
	}
	resumed, err := m.Resume()
	if err != nil {
		t.Fatalf("resuming the v1 fixture: %v", err)
	}
	spec, err := workload.Get("jlisp")
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Plan(1, 42).BuildHeap(2.0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := machine.New(h, machine.Config{Cores: 4, HeaderCacheLines: 64})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := resumed.DiffFields(&want); diffs != nil {
		for _, d := range diffs {
			t.Errorf("v1 fixture resume vs uninterrupted run: %s", d)
		}
	}

	// Corrupting or truncating the old version still errors cleanly.
	for _, n := range []int{len(magic) + 2, len(data) / 3, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncated v1 fixture (%d bytes) decoded without error", n)
		}
	}
	for _, off := range []int{20, len(data) / 2, len(data) - 10} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 1
		if _, err := Decode(bad); err == nil {
			t.Errorf("v1 fixture with bit flip at %d decoded without error", off)
		}
	}
}

// TestDecodeVersion2Fixture pins on-disk back-compat for the second format
// revision: the committed testdata snapshot was written by the version-2
// encoder (concurrent mutator present, before the memory-hierarchy fields
// existed) and must keep decoding, restoring and resuming to the
// bit-identical result of an uninterrupted run.
//
// Fixture recipe (burned into the file, do not regenerate with the current
// encoder): workload jlisp, Plan(1, 42).BuildHeap(2.0), machine.Config{
// Cores: 4, MutatorOps: 1 << 40, BarrierMode: machine.BarrierSATB},
// BeginCollect, StepCycles(500), Snapshot.
func TestDecodeVersion2Fixture(t *testing.T) {
	gz, err := os.ReadFile("testdata/v2-jlisp-satb-c4.snap.gz")
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != 2 {
		t.Fatalf("fixture declares version %d, want 2", v)
	}

	st, err := Decode(data)
	if err != nil {
		t.Fatalf("decoding the v2 fixture: %v", err)
	}
	if st.Cycle != 500 {
		t.Fatalf("fixture captured at cycle %d, want 500", st.Cycle)
	}
	if st.Mut == nil {
		t.Fatal("v2 fixture carries no mutator state")
	}

	// The v2 state must survive a re-encode at the current version.
	up, err := Decode(Encode(st))
	if err != nil {
		t.Fatalf("re-encoded fixture failed to decode: %v", err)
	}
	if !reflect.DeepEqual(st, up) {
		t.Fatalf("fixture state changed across the version upgrade: %v", Diff(st, up))
	}

	// Restoring and resuming must reproduce the uninterrupted run exactly.
	m, err := machine.RestoreMachine(st)
	if err != nil {
		t.Fatalf("restoring the v2 fixture: %v", err)
	}
	resumed, err := m.Resume()
	if err != nil {
		t.Fatalf("resuming the v2 fixture: %v", err)
	}
	spec, err := workload.Get("jlisp")
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Plan(1, 42).BuildHeap(2.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.Config{Cores: 4, MutatorOps: 1 << 40, BarrierMode: machine.BarrierSATB}
	ref, err := machine.New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := resumed.DiffFields(&want); diffs != nil {
		for _, d := range diffs {
			t.Errorf("v2 fixture resume vs uninterrupted run: %s", d)
		}
	}

	// Corrupting or truncating the old version still errors cleanly.
	for _, n := range []int{len(magic) + 2, len(data) / 3, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncated v2 fixture (%d bytes) decoded without error", n)
		}
	}
	for _, off := range []int{20, len(data) / 2, len(data) - 10} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 1
		if _, err := Decode(bad); err == nil {
			t.Errorf("v2 fixture with bit flip at %d decoded without error", off)
		}
	}
}

// FuzzSnapshotDecode checks that arbitrary bytes — including mutations of a
// valid snapshot — never panic or over-allocate in Decode, and that inputs
// accepted by Decode re-encode canonically.
func FuzzSnapshotDecode(f *testing.F) {
	st := captureState(f, "jlisp", machine.Config{Cores: 2}, 100)
	valid := Encode(st)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		if binary.LittleEndian.Uint32(data[len(magic):]) == version {
			// A current-version input Decode accepts must re-encode to the
			// same bytes (one canonical encoding per state).
			if !reflect.DeepEqual(Encode(got), data) {
				t.Fatal("accepted input does not re-encode canonically")
			}
			return
		}
		// An older version re-encodes at the current version; the state must
		// survive the upgrade round trip unchanged.
		up, err := Decode(Encode(got))
		if err != nil {
			t.Fatalf("re-encoding an accepted old-version input failed to decode: %v", err)
		}
		if !reflect.DeepEqual(got, up) {
			t.Fatal("old-version state changed across the re-encode round trip")
		}
	})
}
