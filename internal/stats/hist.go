package stats

import (
	"math"
	"time"
)

// Hist is a power-of-two-bucketed latency histogram over microseconds.
// Bucket i counts observations with ceil(log2(µs)) == i, so quantile
// estimates are exact to within a factor of two — plenty for p50 / p95 /
// p99 service-latency reporting without unbounded memory. It is shared by
// the gcserved metrics (internal/server) and the gcfleet coordinator
// metrics (internal/cluster), so both tiers report latency the same way.
//
// Hist is a plain value type with no internal locking; callers serialize
// access (both consumers guard it with their metrics mutex) and may copy it
// under that lock to read a consistent snapshot.
type Hist struct {
	buckets [48]int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	i := 0
	for us > 0 { // i = bits.Len64(us): bucket upper bound 2^i µs
		us >>= 1
		i++
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Quantile returns an upper bound on the q-quantile in seconds.
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			return math.Ldexp(1, i) / 1e6 // 2^i µs in seconds
		}
	}
	return h.max.Seconds()
}

// QuantileDuration returns an upper bound on the q-quantile as a Duration.
func (h *Hist) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Second))
}

// Count returns the number of samples observed.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the sum of all observed samples.
func (h *Hist) Sum() time.Duration { return h.sum }

// Max returns the largest observed sample.
func (h *Hist) Max() time.Duration { return h.max }
