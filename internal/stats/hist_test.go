package stats

import (
	"testing"
	"time"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty hist quantile = %g, want 0", h.Quantile(0.5))
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond) // bucket upper bound 1024µs
	}
	h.Observe(100 * time.Millisecond)
	if h.Count() != 101 {
		t.Fatalf("count = %d, want 101", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.001 || p50 > 0.002048 {
		t.Errorf("p50 = %g, want within 2x of 1ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %g < p50 %g", p99, p50)
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("max = %s, want 100ms", h.Max())
	}
	if h.Sum() != 100*time.Millisecond+100*time.Millisecond {
		t.Errorf("sum = %s, want 200ms", h.Sum())
	}
}

func TestHistNegativeAndHuge(t *testing.T) {
	var h Hist
	h.Observe(-time.Second) // clamped to zero
	h.Observe(1 << 60)      // clamped into the last bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if q := h.Quantile(1.0); q <= 0 {
		t.Errorf("q100 = %g, want > 0", q)
	}
}

func TestHistSnapshotCopy(t *testing.T) {
	var h Hist
	h.Observe(time.Millisecond)
	snap := h // value copy is an independent snapshot
	h.Observe(time.Millisecond)
	if snap.Count() != 1 || h.Count() != 2 {
		t.Errorf("snapshot count %d / live count %d, want 1 / 2", snap.Count(), h.Count())
	}
}
