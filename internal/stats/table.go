// Package stats provides small numeric and formatting helpers shared by the
// experiment harness: speedup computation, percentage formatting, and
// plain-text tables in the style of the paper's Tables I and II.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned plain-text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; missing cells are left empty, extra cells are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row formatting each value with %v.
func (t *Table) Addf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprint(c)
	}
	t.Add(s...)
}

// Write renders the table. Column widths adapt to content; the first column
// is left-aligned, the rest right-aligned (matching the paper's tables).
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(pad(c, widths[i], false))
			} else {
				b.WriteString(pad(c, widths[i], true))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

// Speedup returns base/x, the paper's speedup metric (Figures 5 and 6).
func Speedup(base, x int64) float64 {
	if x == 0 {
		return 0
	}
	return float64(base) / float64(x)
}

// Percent formats num/den as a percentage with two decimals, e.g. "29.40 %",
// matching the paper's table style.
func Percent(num, den int64) string {
	if den == 0 {
		return "0.00 %"
	}
	return fmt.Sprintf("%.2f %%", 100*float64(num)/float64(den))
}

// CyclesAndPercent formats "N (p %)" as in the paper's Table II.
func CyclesAndPercent(num, den int64) string {
	if den == 0 {
		return fmt.Sprintf("%d (0.00 %%)", num)
	}
	return fmt.Sprintf("%d (%.2f %%)", num, 100*float64(num)/float64(den))
}
