package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.Add("alpha", "1")
	tb.Addf("beta", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "Title") || !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Fatalf("content missing:\n%s", out)
	}
	// Right alignment of the value column: "1" ends each row cell.
	for _, ln := range lines {
		if strings.HasPrefix(ln, "alpha") && !strings.HasSuffix(ln, "1") {
			t.Fatalf("value not right-aligned: %q", ln)
		}
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("x")           // missing
	tb.Add("y", "z", "w") // extra dropped
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Fatalf("missing cell not padded: %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 2 {
		t.Fatalf("extra cell not dropped: %v", tb.Rows[1])
	}
	_ = tb.String() // must not panic
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 50) != 2.0 || Speedup(100, 0) != 0 {
		t.Fatal("speedup math wrong")
	}
}

func TestPercentFormats(t *testing.T) {
	if got := Percent(2940, 3251965); got != "0.09 %" {
		t.Fatalf("Percent = %q", got)
	}
	if got := Percent(1, 0); got != "0.00 %" {
		t.Fatalf("Percent div0 = %q", got)
	}
	if got := CyclesAndPercent(629596, 2141803); got != "629596 (29.40 %)" {
		t.Fatalf("CyclesAndPercent = %q (paper Table II javac header-lock)", got)
	}
}
