package sweep

import (
	"hash/fnv"
	"testing"

	"hwgc"
)

// BenchmarkSweepPlanner measures the pure planning cost of a representative
// design-space sweep — canonicalization, cross-product expansion with a
// constraint, per-point canonical encoding and content addressing — without
// executing any point.
//
// Besides ns/op it reports two deterministic metrics that the benchdiff
// gate pins exactly:
//
//   - plan-points: the planned point count. Any change to expansion,
//     constraint evaluation or default resolution that alters coverage
//     shifts this.
//   - plan-order-hash: an FNV-32a hash of the concatenated point keys in
//     plan order. The plan order is the contract the fleet relies on to
//     dedupe and aggregate across backends, so any reorder — a changed
//     axis sort, a different odometer direction, a canonicalization tweak
//     that shifts content keys — trips the gate even when the count stays
//     flat.
func BenchmarkSweepPlanner(b *testing.B) {
	var points int
	var orderHash uint32
	for i := 0; i < b.N; i++ {
		lat := int64(1)
		space := &hwgc.SweepSpace{
			Benches: []string{"jlisp", "search", "db"},
			Scales:  []int{1, 2},
			Seeds:   []int64{1, 2},
			Axes: []hwgc.SweepAxis{
				{Field: "Cores", Values: []int64{1, 2, 4, 8, 16, 32}},
				{Field: "MemLatency", Values: []int64{10, 20, 40}},
				{Field: "MemBanks", Values: []int64{2, 4, 8}},
				// An enum axis, so the pinned plan covers string-valued
				// canonicalization (sorting, "none" normalization) too.
				{Field: "BarrierMode", Strings: []string{"none", "satb", "incupdate"}},
			},
			// The paper-style sanity constraints: enough banks to feed the
			// cores, and no single-bank many-core corners.
			Constraints: []hwgc.SweepConstraint{
				{A: "MemBanks", Op: ">=", B: "Cores"},
				{A: "MemLatency", Op: ">", Value: &lat},
			},
			Objective: hwgc.ObjectiveSpeedupPerCore,
		}
		pts, err := space.Points()
		if err != nil {
			b.Fatal(err)
		}
		h := fnv.New32a()
		for _, p := range pts {
			_, _ = h.Write([]byte(p.Key))
		}
		points = len(pts)
		orderHash = h.Sum32()
	}
	b.ReportMetric(float64(points), "plan-points")
	b.ReportMetric(float64(orderHash), "plan-order-hash")
}
