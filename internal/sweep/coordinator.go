package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"hwgc"
	"hwgc/internal/jobs"
)

// Sentinel errors for the coordinator's lookup methods.
var (
	// ErrNotFound reports an unknown sweep ID.
	ErrNotFound = errors.New("sweep: no such sweep")
	// ErrTerminal reports a cancel of an already-finished sweep.
	ErrTerminal = errors.New("sweep: sweep already in a terminal state")
)

// auxSweepTag and auxCancelTag are the jobs-WAL aux record tags the
// coordinator persists sweep lifecycle under: one "sweep" record per
// accepted space (payload: auxSweep), one "sweep-cancel" record per DELETE.
// Replaying them in order rebuilds every sweep across a restart without a
// second log.
const (
	auxSweepTag  = "sweep"
	auxCancelTag = "sweep-cancel"
)

// auxSweep is the durable payload of one accepted sweep.
type auxSweep struct {
	Space json.RawMessage // canonical SweepSpace bytes
	Class string          `json:",omitempty"`
}

// maxPointResubmits bounds how often a point whose job terminated without a
// result (cancelled externally, or migrated to another backend) is revived
// before the point is declared failed.
const maxPointResubmits = 5

// Options configures a Coordinator.
type Options struct {
	// Jobs executes the points. Required.
	Jobs *jobs.Manager
	// Lookup consults the serving tier's result cache before submitting a
	// point as a job; a hit completes the point instantly (marked deduped).
	// Optional.
	Lookup func(key string) ([]byte, bool)
	// Clock overrides time.Now for event and Info timestamps (tests).
	Clock func() time.Time
}

// Coordinator owns the sweep table on one gcserved node: it plans spaces,
// dedupes points against cached results, submits the remainder as gcjobs
// jobs, watches their terminal transitions, and maintains each sweep's
// frontier and event stream. Sweep submissions and cancellations ride the
// jobs WAL as aux records, so Recover rebuilds mid-flight sweeps after a
// crash without re-running completed points (their jobs dedupe by content
// key against the recovered job table and result cache).
type Coordinator struct {
	opts    Options
	metrics *Metrics

	mu     chan struct{} // 1-buffered mutex; select-able against stop
	sweeps map[string]*Tracker
	order  []string
	stop   chan struct{}
	done   chan struct{} // closed when every watcher exited
	nwatch int
}

// New returns a Coordinator. Call Recover to replay persisted sweeps, and
// Close before shutting the job manager down.
func New(opts Options) (*Coordinator, error) {
	if opts.Jobs == nil {
		return nil, fmt.Errorf("sweep: Options.Jobs is required")
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	c := &Coordinator{
		opts:    opts,
		metrics: NewMetrics(),
		mu:      make(chan struct{}, 1),
		sweeps:  make(map[string]*Tracker),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	return c, nil
}

func (c *Coordinator) lock()   { c.mu <- struct{}{} }
func (c *Coordinator) unlock() { <-c.mu }

// Metrics returns the coordinator's counter set.
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Submit plans and launches the sweep described by space. The sweep ID is
// the content address of the canonical space, so resubmitting an identical
// space dedupes onto the live (or finished) sweep — accepted is false and
// zero new jobs are created. A superset space gets a new ID but its
// already-computed points dedupe point-by-point against the cache and job
// table, running only the delta.
func (c *Coordinator) Submit(space *hwgc.SweepSpace, class string) (Info, bool, error) {
	canonical, err := space.CanonicalJSON()
	if err != nil {
		return Info{}, false, err
	}
	id := hwgc.KeyBytes(canonical)
	if class == "" {
		class = c.opts.Jobs.DefaultClass()
	}
	if !c.opts.Jobs.HasClass(class) {
		return Info{}, false, fmt.Errorf("sweep: unknown class %q", class)
	}
	points, err := space.Points()
	if err != nil {
		return Info{}, false, err
	}

	c.lock()
	if t, ok := c.sweeps[id]; ok {
		c.metrics.sweepsDeduped.Add(1)
		info := t.Info()
		c.unlock()
		return info, false, nil
	}
	select {
	case <-c.stop:
		c.unlock()
		return Info{}, false, jobs.ErrDraining
	default:
	}
	// Durable before visible: the aux record is fsynced before the sweep
	// exists anywhere a client could observe it, so recovery never misses
	// an acknowledged sweep.
	payload, err := json.Marshal(auxSweep{Space: canonical, Class: class})
	if err != nil {
		c.unlock()
		return Info{}, false, err
	}
	if err := c.opts.Jobs.AppendAux(auxSweepTag, id, payload); err != nil {
		c.unlock()
		return Info{}, false, err
	}
	t := NewTracker(id, space, class, points, c.metrics, c.opts.Clock)
	c.sweeps[id] = t
	c.order = append(c.order, id)
	c.launchLocked(t)
	info := t.Info()
	c.unlock()
	return info, true, nil
}

// launchLocked resolves every pending point of t: cache hits complete
// immediately, the rest are submitted as jobs and watched. Caller holds the
// coordinator lock.
func (c *Coordinator) launchLocked(t *Tracker) {
	for i := range t.Points {
		if t.PointPending(i) {
			c.launchPointLocked(t, i, 0)
		}
	}
}

// launchPointLocked satisfies one point from the cache or hands it to the
// job tier, spawning a watcher for its terminal transition. Caller holds
// the coordinator lock.
func (c *Coordinator) launchPointLocked(t *Tracker, index, attempts int) {
	p := t.Points[index]
	if c.opts.Lookup != nil {
		if body, ok := c.opts.Lookup(p.Key); ok {
			if outcome, err := decodeOutcome(index, p, body); err == nil {
				t.CompletePoint(index, outcome, true)
				return
			}
			// An undecodable cache body falls through to a fresh execution.
		}
	}
	_, accepted, err := c.opts.Jobs.Submit(jobs.KindCollect, t.Class, p.Canonical)
	if err != nil {
		t.FailPoint(index, err.Error())
		return
	}
	if accepted {
		t.NoteJobSubmitted()
	}
	c.nwatch++
	go c.watchPoint(t, index, attempts, !accepted)
}

// decodeOutcome parses a point's encoded CollectResponse body.
func decodeOutcome(index int, p hwgc.SweepPoint, body []byte) (PointOutcome, error) {
	var resp hwgc.CollectResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return PointOutcome{}, err
	}
	return PointOutcome{Index: index, Key: p.Key, Req: p.Req, Result: resp.Result}, nil
}

// watchPoint waits for one point's job to reach a terminal state and
// applies the transition to the tracker. Terminal events can be dropped by
// a full subscriber buffer (the channel still closes), so a closed channel
// re-checks the job table before concluding anything.
func (c *Coordinator) watchPoint(t *Tracker, index, attempts int, coalesced bool) {
	defer c.watcherExit()
	p := t.Points[index]
	state, errMsg, ok := c.awaitTerminal(p.Key)
	if !ok {
		return // coordinator stopping; recovery resumes the sweep
	}

	c.lock()
	defer c.unlock()
	if !t.PointPending(index) {
		return
	}
	switch state {
	case jobs.StateDone:
		body, _, err := c.opts.Jobs.Result(p.Key)
		if err != nil {
			t.FailPoint(index, err.Error())
			return
		}
		outcome, err := decodeOutcome(index, p, body)
		if err != nil {
			t.FailPoint(index, err.Error())
			return
		}
		t.CompletePoint(index, outcome, coalesced)
	case jobs.StateFailed:
		t.FailPoint(index, errMsg)
	case jobs.StateCancelled, jobs.StateMigrated:
		if t.CancelRequested() && state == jobs.StateCancelled {
			t.CancelPoint(index)
			return
		}
		// Cancelled by someone else, or migrated to another backend: the
		// sweep still wants the result here, so revive the job (determinism
		// makes duplicate execution harmless). Bounded, to rule out a
		// livelock against a client cancelling in a loop.
		if attempts+1 >= maxPointResubmits {
			t.FailPoint(index, fmt.Sprintf("sweep: point job %s after %d resubmits", state, attempts+1))
			return
		}
		c.launchPointLocked(t, index, attempts+1)
	}
}

// awaitTerminal blocks until the job reaches a terminal state, the
// coordinator stops (ok=false), or the job disappears (treated as
// cancelled, which triggers a resubmit).
func (c *Coordinator) awaitTerminal(key string) (state jobs.State, errMsg string, ok bool) {
	for {
		history, ch, stopSub, err := c.opts.Jobs.Subscribe(key)
		if err != nil {
			// Unknown job: compacted away or never admitted; resubmit path.
			return jobs.StateCancelled, "", true
		}
		for _, ev := range history {
			if ev.State.Terminal() {
				stopSub()
				return ev.State, ev.Error, true
			}
		}
		if ch == nil {
			stopSub()
			// Terminal but absent from the bounded history (pathological
			// churn); ask the table directly.
			if info, err := c.opts.Jobs.Get(key); err == nil && info.State.Terminal() {
				return info.State, info.Error, true
			}
			return jobs.StateCancelled, "", true
		}
		closed := false
		for !closed {
			select {
			case <-c.stop:
				stopSub()
				return "", "", false
			case ev, alive := <-ch:
				if !alive {
					closed = true
					break
				}
				if ev.State.Terminal() {
					stopSub()
					return ev.State, ev.Error, true
				}
			}
		}
		stopSub()
		// Channel closed: a terminal event fired but may have been dropped.
		if info, err := c.opts.Jobs.Get(key); err == nil && info.State.Terminal() {
			return info.State, info.Error, true
		}
		// A revival raced the close; subscribe to the fresh event log.
	}
}

func (c *Coordinator) watcherExit() {
	c.lock()
	c.nwatch--
	last := c.nwatch == 0
	var stopping bool
	select {
	case <-c.stop:
		stopping = true
	default:
	}
	c.unlock()
	if last && stopping {
		close(c.done)
	}
}

// Recover replays the persisted sweep records and relaunches every
// non-cancelled sweep. Points whose jobs completed before the crash (or
// whose results the cache still holds) dedupe instantly, so only genuinely
// unfinished work runs again. Call once, before serving traffic.
func (c *Coordinator) Recover() error {
	type rec struct {
		space     *hwgc.SweepSpace
		class     string
		cancelled bool
	}
	table := make(map[string]*rec)
	var order []string
	for _, a := range c.opts.Jobs.AuxRecords("") {
		switch a.Tag {
		case auxSweepTag:
			if _, dup := table[a.ID]; dup {
				continue
			}
			var ax auxSweep
			if err := json.Unmarshal(a.Payload, &ax); err != nil {
				return fmt.Errorf("sweep: aux record %s: %w", a.ID, err)
			}
			sp, err := hwgc.DecodeSweepSpace(bytes.NewReader(ax.Space))
			if err != nil {
				return fmt.Errorf("sweep: aux record %s: %w", a.ID, err)
			}
			table[a.ID] = &rec{space: sp, class: ax.Class}
			order = append(order, a.ID)
		case auxCancelTag:
			if r, ok := table[a.ID]; ok {
				r.cancelled = true
			}
		}
	}
	for _, id := range order {
		r := table[id]
		class := r.class
		if class == "" || !c.opts.Jobs.HasClass(class) {
			class = c.opts.Jobs.DefaultClass()
		}
		points, err := r.space.Points()
		if err != nil {
			return fmt.Errorf("sweep: recovering %s: %w", id, err)
		}
		c.lock()
		if _, dup := c.sweeps[id]; dup {
			c.unlock()
			continue
		}
		t := NewTracker(id, r.space, class, points, c.metrics, c.opts.Clock)
		c.sweeps[id] = t
		c.order = append(c.order, id)
		if r.cancelled {
			// The DELETE was durable: rebuild the sweep as cancelled without
			// touching the job tier. Completed results are not re-attached —
			// the record of interest for a cancelled sweep is its state.
			t.MarkCancelRequested()
			for i := range points {
				t.CancelPoint(i)
			}
		} else {
			c.launchLocked(t)
		}
		c.unlock()
	}
	return nil
}

// Get returns one sweep's progress snapshot.
func (c *Coordinator) Get(id string) (Info, error) {
	c.lock()
	defer c.unlock()
	t, ok := c.sweeps[id]
	if !ok {
		return Info{}, ErrNotFound
	}
	return t.Info(), nil
}

// Cancel cancels a sweep: its record is persisted, outstanding point jobs
// not shared with another live sweep are cancelled, and the sweep reaches
// the cancelled state once every point settles. Terminal sweeps return
// ErrTerminal with their final Info.
func (c *Coordinator) Cancel(id string) (Info, error) {
	c.lock()
	t, ok := c.sweeps[id]
	if !ok {
		c.unlock()
		return Info{}, ErrNotFound
	}
	if t.Terminal() {
		info := t.Info()
		c.unlock()
		return info, ErrTerminal
	}
	if err := c.opts.Jobs.AppendAux(auxCancelTag, id, nil); err != nil {
		c.unlock()
		return Info{}, err
	}
	t.MarkCancelRequested()
	// A point job feeding another live sweep must keep running; cancelling
	// it would fail a sweep the client did not touch.
	shared := make(map[string]bool)
	for oid, ot := range c.sweeps {
		if oid == id || ot.Terminal() {
			continue
		}
		for _, k := range ot.PendingKeys() {
			shared[k] = true
		}
	}
	pending := t.PendingKeys()
	info := t.Info()
	c.unlock()
	for _, k := range pending {
		if !shared[k] {
			_, _ = c.opts.Jobs.Cancel(k) // ErrTerminal/ErrNotFound: fine, watcher settles it
		}
	}
	return info, nil
}

// Subscribe returns a sweep's replayable event history plus a live channel
// (nil when the sweep is already terminal). The returned stop function
// detaches the subscription.
func (c *Coordinator) Subscribe(id string) ([]Event, <-chan Event, func(), error) {
	c.lock()
	t, ok := c.sweeps[id]
	if !ok {
		c.unlock()
		return nil, nil, nil, ErrNotFound
	}
	ev := t.Events
	c.unlock()
	history, ch := ev.Subscribe()
	return history, ch, func() { ev.Unsubscribe(ch) }, nil
}

// Close stops every point watcher. In-flight sweeps stay durable in the
// WAL; the next Open+Recover resumes them.
func (c *Coordinator) Close() {
	c.lock()
	select {
	case <-c.stop:
		c.unlock()
		return
	default:
	}
	close(c.stop)
	idle := c.nwatch == 0
	c.unlock()
	if idle {
		close(c.done)
	}
	<-c.done
}

// WriteMetrics writes every gcsweep_* Prometheus series to w.
func (c *Coordinator) WriteMetrics(w io.Writer) error {
	return c.metrics.WritePrometheus(w)
}
