package sweep

import (
	"context"
	"sync"
	"testing"
	"time"

	"hwgc"
	"hwgc/internal/jobs"
)

// testCache is a minimal stand-in for the serving tier's result cache.
type testCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newTestCache() *testCache { return &testCache{m: make(map[string][]byte)} }

func (c *testCache) Put(id string, body []byte) {
	c.mu.Lock()
	c.m[id] = append([]byte(nil), body...)
	c.mu.Unlock()
}

func (c *testCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[key]
	return b, ok
}

// harness wires a real jobs manager to a coordinator over a shared cache.
type harness struct {
	m     *jobs.Manager
	c     *Coordinator
	cache *testCache
}

func newHarness(t *testing.T, dir string) *harness {
	t.Helper()
	cache := newTestCache()
	m, err := jobs.Open(jobs.Options{Dir: dir, Runners: 2, CheckpointCycles: 5000,
		OnResult: func(id string, body []byte) { cache.Put(id, body) }})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Jobs: m, Lookup: cache.Get})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	return &harness{m: m, c: c, cache: cache}
}

func (h *harness) close(t *testing.T) {
	t.Helper()
	h.c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func waitSweep(t *testing.T, c *Coordinator, id string, want string) Info {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		info, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if info.State != StateRunning || time.Now().After(deadline) {
			t.Fatalf("sweep %s state %s (want %s): %+v", id, info.State, want, info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testSpace keeps the test sweeps small and fast: 4 points over Cores.
func testSpace() *hwgc.SweepSpace {
	return &hwgc.SweepSpace{
		Benches: []string{"jlisp"},
		Seeds:   []int64{3},
		Axes:    []hwgc.SweepAxis{{Field: "Cores", Values: []int64{1, 2, 4, 8}}},
	}
}

func TestSweepCoordinatorE2E(t *testing.T) {
	h := newHarness(t, t.TempDir())
	defer h.close(t)

	info, accepted, err := h.c.Submit(testSpace(), "")
	if err != nil || !accepted {
		t.Fatalf("submit: accepted=%v err=%v", accepted, err)
	}
	if info.Points != 4 || len(info.ID) != 64 {
		t.Fatalf("submit info: %+v", info)
	}
	final := waitSweep(t, h.c, info.ID, StateDone)
	if final.Completed != 4 || final.Failed != 0 || final.Cancelled != 0 {
		t.Fatalf("final info: %+v", final)
	}
	if len(final.Frontier) != 4 || final.Frontier[0].Rank != 1 {
		t.Fatalf("frontier: %+v", final.Frontier)
	}
	// Event stream: planned first, then points/frontiers, terminal done
	// last, with strictly increasing sequence numbers.
	history, ch, stop, err := h.c.Subscribe(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if ch != nil {
		t.Fatal("live channel for a terminal sweep")
	}
	if history[0].Type != "planned" || !history[len(history)-1].terminal() {
		t.Fatalf("event bracket: first %q last %q", history[0].Type, history[len(history)-1].Type)
	}
	var points, frontiers int
	for i, ev := range history {
		if i > 0 && ev.Seq <= history[i-1].Seq {
			t.Fatalf("event %d: seq %d after %d", i, ev.Seq, history[i-1].Seq)
		}
		switch ev.Type {
		case "point":
			points++
		case "frontier":
			frontiers++
		}
	}
	if points != 4 || frontiers == 0 {
		t.Fatalf("events: %d point, %d frontier", points, frontiers)
	}
}

// Satellite: identical space resubmission returns the same sweep ID with
// zero new jobs; a superset space runs only the delta points.
func TestSweepIdempotentResubmission(t *testing.T) {
	h := newHarness(t, t.TempDir())
	defer h.close(t)

	info, accepted, err := h.c.Submit(testSpace(), "")
	if err != nil || !accepted {
		t.Fatalf("submit: accepted=%v err=%v", accepted, err)
	}
	first := waitSweep(t, h.c, info.ID, StateDone)
	if first.JobsSubmitted != 4 {
		t.Fatalf("first run submitted %d jobs, want 4", first.JobsSubmitted)
	}

	again, accepted, err := h.c.Submit(testSpace(), "")
	if err != nil {
		t.Fatal(err)
	}
	if accepted || again.ID != info.ID {
		t.Fatalf("identical space: accepted=%v id=%s (want dedupe onto %s)", accepted, again.ID, info.ID)
	}
	if again.JobsSubmitted != first.JobsSubmitted {
		t.Fatalf("identical resubmission submitted new jobs: %d -> %d", first.JobsSubmitted, again.JobsSubmitted)
	}

	// Superset: two more core counts. Only the 2 new points may execute.
	super := testSpace()
	super.Axes[0].Values = []int64{1, 2, 4, 8, 16, 32}
	sinfo, accepted, err := h.c.Submit(super, "")
	if err != nil || !accepted {
		t.Fatalf("superset submit: accepted=%v err=%v", accepted, err)
	}
	if sinfo.ID == info.ID {
		t.Fatal("superset space got the same sweep ID")
	}
	sfinal := waitSweep(t, h.c, sinfo.ID, StateDone)
	if sfinal.Completed != 6 {
		t.Fatalf("superset completed %d points, want 6", sfinal.Completed)
	}
	if sfinal.Deduped != 4 {
		t.Fatalf("superset deduped %d points, want the 4 overlapping ones", sfinal.Deduped)
	}
	if sfinal.JobsSubmitted != 2 {
		t.Fatalf("superset submitted %d jobs, want only the 2 delta points", sfinal.JobsSubmitted)
	}
}

// A restart mid-sweep must resume from the WAL without re-running completed
// points.
func TestSweepRecoverAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir)
	info, accepted, err := h.c.Submit(testSpace(), "")
	if err != nil || !accepted {
		t.Fatalf("submit: accepted=%v err=%v", accepted, err)
	}
	waitSweep(t, h.c, info.ID, StateDone)
	h.close(t)

	// Same dir, fresh process: the aux record replays the sweep; every
	// point dedupes against the recovered job table, so zero new jobs run.
	h2 := newHarness(t, dir)
	defer h2.close(t)
	final := waitSweep(t, h2.c, info.ID, StateDone)
	if final.Completed != 4 || final.Failed != 0 {
		t.Fatalf("recovered sweep: %+v", final)
	}
	if final.JobsSubmitted != 0 {
		t.Fatalf("recovery submitted %d new jobs, want 0", final.JobsSubmitted)
	}
	if final.Deduped != 4 {
		t.Fatalf("recovery deduped %d points, want 4", final.Deduped)
	}
}

// Cancelling a sweep cancels its outstanding points and the cancellation
// survives a restart.
func TestSweepCancel(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir)

	// One runner and a large backlog so most points are still queued when
	// the cancel lands.
	space := &hwgc.SweepSpace{
		Benches: []string{"jlisp", "search", "db", "javac"},
		Seeds:   []int64{1, 2, 3, 4},
		Axes:    []hwgc.SweepAxis{{Field: "Cores", Values: []int64{1, 2}}},
	}
	info, accepted, err := h.c.Submit(space, "")
	if err != nil || !accepted {
		t.Fatalf("submit: accepted=%v err=%v", accepted, err)
	}
	if _, err := h.c.Cancel(info.ID); err != nil {
		t.Fatal(err)
	}
	final := waitSweep(t, h.c, info.ID, StateCancelled)
	if final.Completed+final.Cancelled+final.Failed != final.Points {
		t.Fatalf("cancelled sweep accounting: %+v", final)
	}
	if final.Cancelled == 0 {
		t.Fatalf("no points cancelled: %+v", final)
	}
	if _, err := h.c.Cancel(info.ID); err != ErrTerminal {
		t.Fatalf("second cancel err = %v, want ErrTerminal", err)
	}
	h.close(t)

	h2 := newHarness(t, dir)
	defer h2.close(t)
	rec, err := h2.c.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCancelled {
		t.Fatalf("recovered cancelled sweep state %s", rec.State)
	}
}

func TestSweepCoordinatorErrors(t *testing.T) {
	h := newHarness(t, t.TempDir())
	defer h.close(t)
	if _, err := h.c.Get("nope"); err != ErrNotFound {
		t.Fatalf("Get err = %v", err)
	}
	if _, err := h.c.Cancel("nope"); err != ErrNotFound {
		t.Fatalf("Cancel err = %v", err)
	}
	if _, _, _, err := h.c.Subscribe("nope"); err != ErrNotFound {
		t.Fatalf("Subscribe err = %v", err)
	}
	if _, _, err := h.c.Submit(testSpace(), "no-such-class"); err == nil {
		t.Fatal("Submit accepted an unknown class")
	}
	if _, _, err := h.c.Submit(&hwgc.SweepSpace{}, ""); err == nil {
		t.Fatal("Submit accepted an invalid space")
	}
}
