package sweep

import (
	"sync"
	"time"
)

// Event is one entry in a sweep's SSE stream. Type is one of:
//
//   - "planned": the sweep was accepted; Points is the plan size.
//   - "point": one point reached a terminal state (State is "done",
//     "failed" or "cancelled"; Key/Index name the point, Deduped reports a
//     cache or job coalesce, counters give running progress).
//   - "frontier": the ranked frontier changed; Frontier is the new ranking.
//   - "done" / "cancelled": the sweep finished; counters are final and
//     Frontier is the final ranking. Terminal for the stream.
//
// Seq is the stream position clients resume from via Last-Event-ID.
type Event struct {
	Seq       int64
	Time      time.Time
	Type      string
	Key       string          `json:",omitempty"`
	Index     int             `json:",omitempty"`
	State     string          `json:",omitempty"`
	Deduped   bool            `json:",omitempty"`
	Error     string          `json:",omitempty"`
	Points    int             `json:",omitempty"`
	Completed int             `json:",omitempty"`
	Failed    int             `json:",omitempty"`
	Cancelled int             `json:",omitempty"`
	Frontier  []FrontierEntry `json:",omitempty"`
}

// terminal reports whether ev ends the stream.
func (ev *Event) terminal() bool { return ev.Type == "done" || ev.Type == "cancelled" }

// maxEvents bounds the replay history per sweep: a full-cap sweep emits one
// point event per point plus frontier updates, so the ring covers
// 2*MaxSweepSpacePoints with headroom.
const maxEvents = 16384

// subBuffer is each subscriber's channel capacity; a stalled SSE client
// loses events rather than blocking completions (the sweep Info remains the
// authoritative record, and Last-Event-ID replays what the ring still holds).
const subBuffer = 64

// EventLog is one sweep's event history plus its live subscribers. It
// mirrors the jobs event log, with sequence numbers exposed for SSE resume.
type EventLog struct {
	mu    sync.Mutex
	seq   int64
	ring  []Event
	subs  map[chan Event]struct{}
	done  bool
	clock func() time.Time
}

// NewEventLog returns an empty log stamping events with clock (nil selects
// time.Now).
func NewEventLog(clock func() time.Time) *EventLog {
	if clock == nil {
		clock = time.Now
	}
	return &EventLog{subs: make(map[chan Event]struct{}), clock: clock}
}

// Emit assigns the next sequence number and timestamp to ev, records it and
// fans it out. A terminal event closes every subscriber channel after
// delivery.
func (l *EventLog) Emit(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	ev.Time = l.clock()
	l.ring = append(l.ring, ev)
	if len(l.ring) > maxEvents {
		l.ring = l.ring[len(l.ring)-maxEvents:]
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop
		}
	}
	if ev.terminal() {
		l.done = true
		for ch := range l.subs {
			close(ch)
			delete(l.subs, ch)
		}
	}
}

// Subscribe returns the replayable history and a live channel (nil when the
// sweep is already terminal). Call Unsubscribe when done.
func (l *EventLog) Subscribe() ([]Event, chan Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	history := append([]Event(nil), l.ring...)
	if l.done {
		return history, nil
	}
	ch := make(chan Event, subBuffer)
	l.subs[ch] = struct{}{}
	return history, ch
}

// Unsubscribe detaches ch. Safe to call after a terminal event closed it.
func (l *EventLog) Unsubscribe(ch chan Event) {
	if ch == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.subs[ch]; ok {
		delete(l.subs, ch)
		close(ch)
	}
}
