// Package sweep implements the parameter-space exploration engine behind
// the /v1/sweeps endpoints: a SweepSpace (root codec) is expanded into
// canonical CollectRequest points, each point is satisfied from the result
// cache or executed as a gcjobs job, and completions stream out as SSE
// events alongside a ranked frontier under a user-chosen objective.
//
// The frontier computation here is a pure function of the completed-point
// set, so a fleet proxy aggregating points completed on different backends
// derives a frontier byte-identical to a single node running the same
// space — the chaos acceptance criterion for the subsystem.
package sweep

import (
	"encoding/json"
	"sort"

	"hwgc"
)

// PointOutcome is one completed sweep point: its planned position, content
// key, the canonical request that ran, and the deterministic result.
type PointOutcome struct {
	Index  int
	Key    string
	Req    hwgc.CollectRequest
	Result hwgc.RunResult
}

// FrontierEntry is one ranked row of a sweep's frontier.
type FrontierEntry struct {
	Rank   int
	Key    string
	Bench  string
	Scale  int
	Seed   int64
	Cores  int
	Cycles int64
	// Value is the objective score the entry ranks by: speedup (per core)
	// over the group baseline, negated cycles, or words per cycle.
	Value float64
}

// groupKey identifies the baseline group for the speedup objectives: every
// point that differs only in Cores shares a group, and the group's
// smallest completed core count is the baseline (an exact T(1) whenever
// the space includes a single-core point).
func groupKey(req *hwgc.CollectRequest) string {
	r := *req
	r.Config.Cores = 0
	b, err := json.Marshal(r)
	if err != nil {
		return r.Bench // unreachable for canonical requests; degrade to bench grouping
	}
	return string(b)
}

// Frontier ranks the completed points under objective and returns the top
// topK entries. It is deterministic: identical outcome sets (in any order)
// produce identical frontiers, byte for byte once JSON-encoded. Points
// whose objective is undefined with the current completions (a speedup
// group whose only member is its own baseline still scores 1.0; a zero
// Cycles result is skipped) are omitted.
func Frontier(objective string, topK int, outcomes []PointOutcome) []FrontierEntry {
	if topK <= 0 || len(outcomes) == 0 {
		return nil
	}
	pts := append([]PointOutcome(nil), outcomes...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Key < pts[j].Key })

	var base map[string]*PointOutcome
	if objective == hwgc.ObjectiveSpeedup || objective == hwgc.ObjectiveSpeedupPerCore {
		base = make(map[string]*PointOutcome)
		for i := range pts {
			p := &pts[i]
			g := groupKey(&p.Req)
			if b, ok := base[g]; !ok || p.Req.Config.Cores < b.Req.Config.Cores {
				base[g] = p
			}
		}
	}

	entries := make([]FrontierEntry, 0, len(pts))
	for i := range pts {
		p := &pts[i]
		cycles := p.Result.Stats.Cycles
		if cycles <= 0 {
			continue
		}
		var value float64
		switch objective {
		case hwgc.ObjectiveMinCycles:
			value = -float64(cycles)
		case hwgc.ObjectiveWordsPerCycle:
			value = float64(p.Result.LiveWords) / float64(cycles)
		case hwgc.ObjectiveSpeedup, hwgc.ObjectiveSpeedupPerCore:
			b := base[groupKey(&p.Req)]
			if b.Result.Stats.Cycles <= 0 {
				continue
			}
			value = float64(b.Result.Stats.Cycles) / float64(cycles)
			if objective == hwgc.ObjectiveSpeedupPerCore {
				value *= float64(b.Req.Config.Cores) / float64(p.Req.Config.Cores)
			}
		default:
			continue
		}
		entries = append(entries, FrontierEntry{
			Key:    p.Key,
			Bench:  p.Req.Bench,
			Scale:  p.Req.Scale,
			Seed:   p.Req.Seed,
			Cores:  p.Req.Config.Cores,
			Cycles: cycles,
			Value:  value,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.Value != b.Value {
			return a.Value > b.Value
		}
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		return a.Key < b.Key
	})
	if len(entries) > topK {
		entries = entries[:topK]
	}
	for i := range entries {
		entries[i].Rank = i + 1
	}
	return entries
}
