package sweep

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"hwgc"
)

func mkOutcome(t *testing.T, bench string, seed int64, cores int, cycles int64, liveWords int) PointOutcome {
	t.Helper()
	req := hwgc.CollectRequest{Bench: bench, Seed: seed, Config: hwgc.Config{Cores: cores}}
	canonical, err := req.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var res hwgc.RunResult
	res.Stats.Cycles = cycles
	res.LiveWords = liveWords
	return PointOutcome{Key: hwgc.KeyBytes(canonical), Req: req, Result: res}
}

// The frontier must be a pure function of the completed set: any completion
// order yields the same ranking, byte for byte.
func TestFrontierOrderInvariant(t *testing.T) {
	var outcomes []PointOutcome
	for _, bench := range []string{"jlisp", "search"} {
		for i, cores := range []int{1, 2, 4, 8} {
			cycles := int64(100000 / (i + 1))
			outcomes = append(outcomes, mkOutcome(t, bench, 3, cores, cycles, 5000))
		}
	}
	want, err := json.Marshal(Frontier(hwgc.ObjectiveSpeedupPerCore, 16, outcomes))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]PointOutcome(nil), outcomes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := json.Marshal(Frontier(hwgc.ObjectiveSpeedupPerCore, 16, shuffled))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: frontier differs:\n%s\n%s", trial, got, want)
		}
	}
}

func TestFrontierSpeedupBaseline(t *testing.T) {
	outcomes := []PointOutcome{
		mkOutcome(t, "jlisp", 1, 1, 1000, 100),
		mkOutcome(t, "jlisp", 1, 2, 500, 100),
		mkOutcome(t, "jlisp", 1, 4, 400, 100),
	}
	fr := Frontier(hwgc.ObjectiveSpeedup, 16, outcomes)
	if len(fr) != 3 {
		t.Fatalf("frontier has %d entries, want 3", len(fr))
	}
	// Raw speedup: cores=4 leads with 1000/400 = 2.5.
	if fr[0].Cores != 4 || fr[0].Value != 2.5 {
		t.Fatalf("top entry %+v, want cores=4 value=2.5", fr[0])
	}
	// Per-core: cores=2 gives 2.0/2=1.0, cores=4 gives 2.5/4=0.625, the
	// baseline itself scores 1.0; tie between cores=1 and cores=2 breaks by
	// fewer cycles (cores=2).
	pc := Frontier(hwgc.ObjectiveSpeedupPerCore, 16, outcomes)
	if pc[0].Cores != 2 || pc[0].Value != 1.0 {
		t.Fatalf("top per-core entry %+v, want cores=2 value=1.0", pc[0])
	}
	if pc[1].Cores != 1 || pc[2].Cores != 4 {
		t.Fatalf("per-core order: %+v", pc)
	}
}

func TestFrontierObjectivesAndTopK(t *testing.T) {
	outcomes := []PointOutcome{
		mkOutcome(t, "jlisp", 1, 1, 900, 900),
		mkOutcome(t, "jlisp", 2, 1, 800, 100),
		mkOutcome(t, "jlisp", 3, 1, 700, 350),
	}
	mc := Frontier(hwgc.ObjectiveMinCycles, 2, outcomes)
	if len(mc) != 2 || mc[0].Cycles != 700 || mc[1].Cycles != 800 {
		t.Fatalf("min-cycles frontier: %+v", mc)
	}
	if mc[0].Rank != 1 || mc[1].Rank != 2 {
		t.Fatalf("ranks: %+v", mc)
	}
	wpc := Frontier(hwgc.ObjectiveWordsPerCycle, 16, outcomes)
	if wpc[0].Seed != 1 || wpc[0].Value != 1.0 {
		t.Fatalf("words-per-cycle top: %+v", wpc[0])
	}
	if got := Frontier(hwgc.ObjectiveMinCycles, 0, outcomes); got != nil {
		t.Fatalf("topK=0 returned %+v", got)
	}
}

// A speedup group with no single-core point uses its smallest completed
// core count as baseline; groups never mix benches or seeds.
func TestFrontierGrouping(t *testing.T) {
	outcomes := []PointOutcome{
		mkOutcome(t, "jlisp", 1, 2, 600, 100),
		mkOutcome(t, "jlisp", 1, 8, 200, 100),
		mkOutcome(t, "search", 1, 2, 6000, 100), // different bench: own group
	}
	fr := Frontier(hwgc.ObjectiveSpeedup, 16, outcomes)
	byKey := map[int]float64{}
	for _, e := range fr {
		if e.Bench == "jlisp" {
			byKey[e.Cores] = e.Value
		} else if e.Value != 1.0 {
			t.Fatalf("search group baseline should score 1.0: %+v", e)
		}
	}
	if byKey[2] != 1.0 || byKey[8] != 3.0 {
		t.Fatalf("jlisp speedups: %+v", byKey)
	}
}
