package sweep

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/stats"
)

// Metrics is the sweep subsystem's counter set, written in Prometheus text
// exposition format as part of the /metrics scrape (gcserved appends its
// coordinator's set; gcfleet appends the proxy aggregator's).
type Metrics struct {
	sweepsSubmitted atomic.Int64 // sweeps accepted with a new ID
	sweepsDeduped   atomic.Int64 // submissions coalesced onto an existing sweep
	sweepsCompleted atomic.Int64
	sweepsCancelled atomic.Int64
	sweepsActive    atomic.Int64 // gauge

	pointsPlanned   atomic.Int64 // points expanded from accepted spaces
	pointsDeduped   atomic.Int64 // points satisfied without a new job execution
	pointsCompleted atomic.Int64
	pointsFailed    atomic.Int64
	pointsCancelled atomic.Int64

	frontierUpdates atomic.Int64 // frontier recomputations that changed the ranking

	mu      sync.Mutex
	latency stats.Hist // submit-to-finish sweep latency
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// ObserveSweep records one sweep's submit-to-finish latency.
func (m *Metrics) ObserveSweep(d time.Duration) {
	m.mu.Lock()
	m.latency.Observe(d)
	m.mu.Unlock()
}

// NoteSweepDeduped counts a submission coalesced onto an existing sweep.
// The Coordinator bumps this internally; the fleet aggregator, which keeps
// its own sweep table, reports its dedupes through here.
func (m *Metrics) NoteSweepDeduped() { m.sweepsDeduped.Add(1) }

// PointsDeduped returns how many points were satisfied without running a
// new job (tests and health checks).
func (m *Metrics) PointsDeduped() int64 { return m.pointsDeduped.Load() }

// PointsCompleted returns the completed-point count.
func (m *Metrics) PointsCompleted() int64 { return m.pointsCompleted.Load() }

// FrontierUpdates returns how many frontier recomputations changed the
// ranking.
func (m *Metrics) FrontierUpdates() int64 { return m.frontierUpdates.Load() }

// WritePrometheus appends every gcsweep_* series to w.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	latency := m.latency
	m.mu.Unlock()

	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
		b = append(b, '\n')
	}
	add("# HELP gcsweep_sweeps_active Sweeps currently tracking outstanding points.")
	add("# TYPE gcsweep_sweeps_active gauge")
	add("gcsweep_sweeps_active %d", m.sweepsActive.Load())
	add("# HELP gcsweep_sweeps_submitted_total Sweeps accepted with a new ID.")
	add("# TYPE gcsweep_sweeps_submitted_total counter")
	add("gcsweep_sweeps_submitted_total %d", m.sweepsSubmitted.Load())
	add("# HELP gcsweep_sweeps_deduped_total Sweep submissions coalesced onto an existing sweep by content key.")
	add("# TYPE gcsweep_sweeps_deduped_total counter")
	add("gcsweep_sweeps_deduped_total %d", m.sweepsDeduped.Load())
	add("# HELP gcsweep_sweeps_completed_total Sweeps that finished with every point terminal.")
	add("# TYPE gcsweep_sweeps_completed_total counter")
	add("gcsweep_sweeps_completed_total %d", m.sweepsCompleted.Load())
	add("# HELP gcsweep_sweeps_cancelled_total Sweeps cancelled by DELETE.")
	add("# TYPE gcsweep_sweeps_cancelled_total counter")
	add("gcsweep_sweeps_cancelled_total %d", m.sweepsCancelled.Load())
	add("# HELP gcsweep_points_planned_total Points expanded from accepted sweep spaces.")
	add("# TYPE gcsweep_points_planned_total counter")
	add("gcsweep_points_planned_total %d", m.pointsPlanned.Load())
	add("# HELP gcsweep_points_deduped_total Points satisfied from cached or already-submitted results, without a new execution.")
	add("# TYPE gcsweep_points_deduped_total counter")
	add("gcsweep_points_deduped_total %d", m.pointsDeduped.Load())
	add("# HELP gcsweep_points_completed_total Points that reached a result.")
	add("# TYPE gcsweep_points_completed_total counter")
	add("gcsweep_points_completed_total %d", m.pointsCompleted.Load())
	add("# HELP gcsweep_points_failed_total Points whose execution failed.")
	add("# TYPE gcsweep_points_failed_total counter")
	add("gcsweep_points_failed_total %d", m.pointsFailed.Load())
	add("# HELP gcsweep_points_cancelled_total Points cancelled before completing.")
	add("# TYPE gcsweep_points_cancelled_total counter")
	add("gcsweep_points_cancelled_total %d", m.pointsCancelled.Load())
	add("# HELP gcsweep_frontier_updates_total Frontier recomputations that changed the ranking.")
	add("# TYPE gcsweep_frontier_updates_total counter")
	add("gcsweep_frontier_updates_total %d", m.frontierUpdates.Load())
	add("# HELP gcsweep_sweep_seconds Submit-to-finish sweep latency (upper-bound quantile estimates).")
	add("# TYPE gcsweep_sweep_seconds summary")
	add("gcsweep_sweep_seconds{quantile=\"0.5\"} %g", latency.Quantile(0.50))
	add("gcsweep_sweep_seconds{quantile=\"0.99\"} %g", latency.Quantile(0.99))
	add("gcsweep_sweep_seconds_sum %g", latency.Sum().Seconds())
	add("gcsweep_sweep_seconds_count %d", latency.Count())
	_, err := w.Write(b)
	return err
}
