package sweep

import (
	"encoding/json"
	"time"

	"hwgc"
)

// Sweep states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
)

// pointStatus is one point's position in its sweep.
type pointStatus uint8

const (
	pointPending pointStatus = iota
	pointDone
	pointFailed
	pointCancelled
)

// Info is a sweep's public progress snapshot, served by GET /v1/sweeps/{id}.
type Info struct {
	ID            string
	State         string
	Objective     string
	Class         string `json:",omitempty"`
	Points        int
	Completed     int
	Failed        int
	Cancelled     int
	Deduped       int
	JobsSubmitted int
	Frontier      []FrontierEntry `json:",omitempty"`
	Submitted     time.Time
	Finished      time.Time `json:",omitempty"`
}

// Tracker holds one sweep's execution-agnostic state: the planned points,
// per-point status, running counters, the current frontier, and the event
// log. The jobs-backed Coordinator (gcserved) and the fleet aggregator
// (gcfleet) both drive a Tracker through its Complete/Fail/CancelPoint
// transitions; the Tracker recomputes the frontier and detects the finish.
// All methods on Tracker must be called under the owner's lock — it does no
// locking of its own, because every owner already serializes transitions
// with sweep-table lookups.
type Tracker struct {
	ID        string
	Space     *hwgc.SweepSpace
	Class     string
	Points    []hwgc.SweepPoint
	State     string
	Events    *EventLog
	Submitted time.Time
	Finished  time.Time

	status          []pointStatus
	outcomes        []PointOutcome // completed outcomes, append order
	failed          int
	cancelledPts    int
	deduped         int
	jobsSub         int
	errs            []string // first few point errors, for Info/debugging
	frontier        []FrontierEntry
	frontierJSON    []byte
	cancelRequested bool

	metrics *Metrics
	clock   func() time.Time
}

// NewTracker registers a freshly planned sweep: counters start at zero, the
// "planned" event is emitted, and the active gauge rises.
func NewTracker(id string, space *hwgc.SweepSpace, class string, points []hwgc.SweepPoint, m *Metrics, clock func() time.Time) *Tracker {
	if clock == nil {
		clock = time.Now
	}
	t := &Tracker{
		ID: id, Space: space, Class: class, Points: points,
		State: StateRunning, Events: NewEventLog(clock),
		Submitted: clock(), status: make([]pointStatus, len(points)),
		metrics: m, clock: clock,
	}
	m.sweepsSubmitted.Add(1)
	m.sweepsActive.Add(1)
	m.pointsPlanned.Add(int64(len(points)))
	t.Events.Emit(Event{Type: "planned", Points: len(points)})
	return t
}

// NoteJobSubmitted records that a point spawned a fresh job execution.
func (t *Tracker) NoteJobSubmitted() { t.jobsSub++ }

// Terminal reports whether the sweep has finished.
func (t *Tracker) Terminal() bool { return t.State != StateRunning }

// PointPending reports whether the point at index still awaits a terminal
// transition.
func (t *Tracker) PointPending(index int) bool {
	return index >= 0 && index < len(t.status) && t.status[index] == pointPending
}

// PendingKeys returns the content keys of every still-pending point.
func (t *Tracker) PendingKeys() []string {
	var keys []string
	for i, st := range t.status {
		if st == pointPending {
			keys = append(keys, t.Points[i].Key)
		}
	}
	return keys
}

// MarkCancelRequested records a DELETE so the terminal state becomes
// cancelled once the outstanding points settle.
func (t *Tracker) MarkCancelRequested() { t.cancelRequested = true }

// CancelRequested reports whether DELETE was called on this sweep.
func (t *Tracker) CancelRequested() bool { return t.cancelRequested }

// CompletePoint transitions the point at index to done with its outcome.
// deduped marks a completion satisfied without a new execution (result
// cache hit or coalesce onto an existing job's result).
func (t *Tracker) CompletePoint(index int, outcome PointOutcome, deduped bool) {
	if !t.PointPending(index) {
		return
	}
	t.status[index] = pointDone
	t.outcomes = append(t.outcomes, outcome)
	t.metrics.pointsCompleted.Add(1)
	if deduped {
		t.deduped++
		t.metrics.pointsDeduped.Add(1)
	}
	t.Events.Emit(Event{
		Type: "point", Key: outcome.Key, Index: index, State: "done", Deduped: deduped,
		Points: len(t.Points), Completed: len(t.outcomes), Failed: t.failed, Cancelled: t.cancelledPts,
	})
	t.refreshFrontier()
	t.maybeFinish()
}

// FailPoint transitions the point at index to failed.
func (t *Tracker) FailPoint(index int, errMsg string) {
	if !t.PointPending(index) {
		return
	}
	t.status[index] = pointFailed
	t.failed++
	t.metrics.pointsFailed.Add(1)
	if len(t.errs) < 8 {
		t.errs = append(t.errs, errMsg)
	}
	t.Events.Emit(Event{
		Type: "point", Key: t.Points[index].Key, Index: index, State: "failed", Error: errMsg,
		Points: len(t.Points), Completed: len(t.outcomes), Failed: t.failed, Cancelled: t.cancelledPts,
	})
	t.maybeFinish()
}

// CancelPoint transitions the point at index to cancelled.
func (t *Tracker) CancelPoint(index int) {
	if !t.PointPending(index) {
		return
	}
	t.status[index] = pointCancelled
	t.cancelledPts++
	t.metrics.pointsCancelled.Add(1)
	t.Events.Emit(Event{
		Type: "point", Key: t.Points[index].Key, Index: index, State: "cancelled",
		Points: len(t.Points), Completed: len(t.outcomes), Failed: t.failed, Cancelled: t.cancelledPts,
	})
	t.maybeFinish()
}

// refreshFrontier recomputes the ranking and emits a frontier event when it
// changed. Encoded-bytes comparison makes "changed" exact: a completion
// that does not alter the ranking stays silent.
func (t *Tracker) refreshFrontier() {
	fr := Frontier(t.Space.Objective, t.Space.TopK, t.outcomes)
	b, err := json.Marshal(fr)
	if err != nil {
		return // unreachable: FrontierEntry marshals cleanly
	}
	if string(b) == string(t.frontierJSON) {
		return
	}
	t.frontier = fr
	t.frontierJSON = b
	t.metrics.frontierUpdates.Add(1)
	t.Events.Emit(Event{
		Type: "frontier", Frontier: fr,
		Points: len(t.Points), Completed: len(t.outcomes), Failed: t.failed, Cancelled: t.cancelledPts,
	})
}

// maybeFinish closes the sweep once every point is terminal.
func (t *Tracker) maybeFinish() {
	if t.State != StateRunning {
		return
	}
	for _, st := range t.status {
		if st == pointPending {
			return
		}
	}
	t.Finished = t.clock()
	typ := StateDone
	if t.cancelRequested {
		typ = StateCancelled
		t.metrics.sweepsCancelled.Add(1)
	} else {
		t.metrics.sweepsCompleted.Add(1)
	}
	t.State = typ
	t.metrics.sweepsActive.Add(-1)
	t.metrics.ObserveSweep(t.Finished.Sub(t.Submitted))
	t.Events.Emit(Event{
		Type: typ, Frontier: t.frontier,
		Points: len(t.Points), Completed: len(t.outcomes), Failed: t.failed, Cancelled: t.cancelledPts,
	})
}

// Frontier returns the current ranking.
func (t *Tracker) Frontier() []FrontierEntry {
	return append([]FrontierEntry(nil), t.frontier...)
}

// FrontierJSON returns the current ranking's canonical encoding.
func (t *Tracker) FrontierJSON() []byte {
	return append([]byte(nil), t.frontierJSON...)
}

// Info returns the sweep's progress snapshot.
func (t *Tracker) Info() Info {
	return Info{
		ID: t.ID, State: t.State, Objective: t.Space.Objective, Class: t.Class,
		Points: len(t.Points), Completed: len(t.outcomes), Failed: t.failed,
		Cancelled: t.cancelledPts, Deduped: t.deduped, JobsSubmitted: t.jobsSub,
		Frontier:  append([]FrontierEntry(nil), t.frontier...),
		Submitted: t.Submitted, Finished: t.Finished,
	}
}
