package syncblock

import (
	"fmt"

	"hwgc/internal/object"
)

// State is the complete serializable state of the synchronization block
// mid-collection: scan/free registers and lock owners, per-core header-lock
// registers, ScanState busy bits, barrier arrival bits, and the event
// counters. The derived busyCount and per-barrier arrival counts are
// recomputed on restore.
type State struct {
	Cores     int
	Scan      object.Addr
	Free      object.Addr
	ScanOwner int
	FreeOwner int
	HeaderReg []object.Addr
	Busy      []bool
	Barriers  [][]bool
	Stats     Stats
}

// CaptureState returns a deep copy of the SB's state.
func (s *SB) CaptureState() *State {
	st := &State{
		Cores:     s.n,
		Scan:      s.scan,
		Free:      s.free,
		ScanOwner: s.scanOwner,
		FreeOwner: s.freeOwner,
		HeaderReg: append([]object.Addr(nil), s.headerReg...),
		Busy:      append([]bool(nil), s.busy...),
		Barriers:  make([][]bool, len(s.barriers)),
		Stats:     s.stats,
	}
	for id, arr := range s.barriers {
		if arr != nil {
			st.Barriers[id] = append([]bool(nil), arr...)
		}
	}
	return st
}

// RestoreState overwrites the SB's state from a captured state, validating
// shapes and owner ranges. The SB must have been created for the same core
// count.
func (s *SB) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("syncblock: nil state")
	}
	if st.Cores != s.n {
		return fmt.Errorf("syncblock: state for %d cores, SB has %d", st.Cores, s.n)
	}
	if len(st.HeaderReg) != s.n || len(st.Busy) != s.n {
		return fmt.Errorf("syncblock: state register lengths %d/%d, want %d",
			len(st.HeaderReg), len(st.Busy), s.n)
	}
	if st.ScanOwner < noOwner || st.ScanOwner >= s.n {
		return fmt.Errorf("syncblock: scan owner %d out of range", st.ScanOwner)
	}
	if st.FreeOwner < noOwner || st.FreeOwner >= s.n {
		return fmt.Errorf("syncblock: free owner %d out of range", st.FreeOwner)
	}
	for id, arr := range st.Barriers {
		if arr != nil && len(arr) != s.n {
			return fmt.Errorf("syncblock: barrier %d has %d arrival bits, want %d", id, len(arr), s.n)
		}
	}
	s.scan = st.Scan
	s.free = st.Free
	s.scanOwner = st.ScanOwner
	s.freeOwner = st.FreeOwner
	copy(s.headerReg, st.HeaderReg)
	s.busyCount = 0
	for i, b := range st.Busy {
		s.busy[i] = b
		if b {
			s.busyCount++
		}
	}
	s.barriers = make([][]bool, len(st.Barriers))
	s.arrived = make([]int, len(st.Barriers))
	for id, arr := range st.Barriers {
		if arr == nil {
			continue
		}
		s.barriers[id] = append([]bool(nil), arr...)
		for _, a := range arr {
			if a {
				s.arrived[id]++
			}
		}
	}
	s.stats = st.Stats
	return nil
}
