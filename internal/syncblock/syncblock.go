// Package syncblock models the coprocessor's synchronization block (SB)
// (paper Section V-C).
//
// The SB maintains the global synchronization state of the multi-core GC
// coprocessor:
//
//   - The scan and free registers, readable by all cores simultaneously, each
//     protected by a lock. A core acquires a lock with a micro-operation; if
//     the lock is held, the SB stalls the core until the owner releases it.
//     Simultaneous claims are resolved by a static prioritization scheme
//     (lower core index wins). Acquisition incurs no clock-cycle penalty in
//     the uncontended case, and a lock released by one core can be
//     reacquired by another core in the same cycle.
//
//   - One header-lock register per core. A core can only change its own
//     register; to acquire a header lock the SB compares the requested
//     address against all other header-lock registers in parallel and stalls
//     the core on a match.
//
//   - The ScanState register with one busy bit per core, used by the
//     termination-detection scheme of Section IV.
//
//   - Barrier synchronization: any micro-instruction can be marked as
//     synchronizing; a core executing one is stalled until all cores have
//     reached a synchronizing micro-instruction.
//
// The cycle-stepped machine steps cores in ascending index order within each
// clock cycle, which realizes the static priority scheme: if core i releases
// a lock during its step, any core j that steps afterwards in the same cycle
// may acquire it (same-cycle release/reacquire), and among cores that stall
// on the same lock the lowest-indexed one acquires it first on the following
// cycle.
package syncblock

import (
	"fmt"

	"hwgc/internal/object"
)

// noOwner marks an unheld lock.
const noOwner = -1

// Stats counts synchronization events for analysis and tests.
type Stats struct {
	ScanAcquisitions   int64
	FreeAcquisitions   int64
	HeaderAcquisitions int64
	ScanConflicts      int64 // failed scan-lock attempts
	FreeConflicts      int64
	HeaderConflicts    int64
}

// SB is the synchronization block shared by all cores of the coprocessor.
// It is not safe for concurrent use; the machine drives it cycle by cycle.
type SB struct {
	n         int
	scan      object.Addr
	free      object.Addr
	scanOwner int
	freeOwner int
	headerReg []object.Addr // per core; NilPtr = unlocked
	busy      []bool
	busyCount int      // number of set busy bits, maintained incrementally
	barriers  [][]bool // arrival bits, indexed by barrier id
	arrived   []int    // arrival count per barrier id (len == len(barriers))
	stats     Stats
}

// New creates a synchronization block for n cores.
func New(n int) *SB {
	if n < 1 {
		panic("syncblock: need at least one core")
	}
	sb := &SB{n: n}
	sb.headerReg = make([]object.Addr, n)
	sb.busy = make([]bool, n)
	sb.scanOwner = noOwner
	sb.freeOwner = noOwner
	return sb
}

// Cores returns the number of cores attached to the SB.
func (s *SB) Cores() int { return s.n }

// Reset prepares the SB for a new collection cycle with the given initial
// scan and free register values.
func (s *SB) Reset(scan, free object.Addr) {
	s.scan = scan
	s.free = free
	s.scanOwner = noOwner
	s.freeOwner = noOwner
	for i := range s.headerReg {
		s.headerReg[i] = object.NilPtr
		s.busy[i] = false
	}
	s.busyCount = 0
	for id, arr := range s.barriers {
		for i := range arr {
			arr[i] = false
		}
		s.arrived[id] = 0
	}
	s.stats = Stats{}
}

// Stats returns a copy of the synchronization counters.
func (s *SB) Stats() Stats { return s.stats }

// Scan reads the scan register (readable by all cores every cycle).
func (s *SB) Scan() object.Addr { return s.scan }

// Free reads the free register (readable by all cores every cycle).
func (s *SB) Free() object.Addr { return s.free }

// TryAcquireScan attempts to acquire the scan lock for core. At most one
// core may modify the scan register per cycle; static priority is realized
// by the machine's core stepping order.
func (s *SB) TryAcquireScan(core int) bool {
	if s.scanOwner == core {
		return true
	}
	if s.scanOwner != noOwner {
		s.stats.ScanConflicts++
		return false
	}
	s.scanOwner = core
	s.stats.ScanAcquisitions++
	return true
}

// ReleaseScan releases the scan lock held by core.
func (s *SB) ReleaseScan(core int) {
	if s.scanOwner != core {
		panic(fmt.Sprintf("syncblock: core %d releasing scan lock owned by %d", core, s.scanOwner))
	}
	s.scanOwner = noOwner
}

// SetScan writes the scan register; only the lock owner may do so.
func (s *SB) SetScan(core int, a object.Addr) {
	if s.scanOwner != core {
		panic(fmt.Sprintf("syncblock: core %d writing scan without lock", core))
	}
	s.scan = a
}

// TryAcquireFree attempts to acquire the free lock for core.
func (s *SB) TryAcquireFree(core int) bool {
	if s.freeOwner == core {
		return true
	}
	if s.freeOwner != noOwner {
		s.stats.FreeConflicts++
		return false
	}
	s.freeOwner = core
	s.stats.FreeAcquisitions++
	return true
}

// ReleaseFree releases the free lock held by core.
func (s *SB) ReleaseFree(core int) {
	if s.freeOwner != core {
		panic(fmt.Sprintf("syncblock: core %d releasing free lock owned by %d", core, s.freeOwner))
	}
	s.freeOwner = noOwner
}

// SetFree writes the free register; only the lock owner may do so.
func (s *SB) SetFree(core int, a object.Addr) {
	if s.freeOwner != core {
		panic(fmt.Sprintf("syncblock: core %d writing free without lock", core))
	}
	s.free = a
}

// ScanOwner returns the core currently holding the scan lock, or -1.
func (s *SB) ScanOwner() int { return s.scanOwner }

// FreeOwner returns the core currently holding the free lock, or -1.
func (s *SB) FreeOwner() int { return s.freeOwner }

// TryLockHeader attempts to set core's header-lock register to addr. The SB
// compares addr against all other header-lock registers in parallel; on a
// match the core stalls (returns false).
func (s *SB) TryLockHeader(core int, addr object.Addr) bool {
	if addr == object.NilPtr {
		panic("syncblock: cannot header-lock the nil address")
	}
	if s.headerReg[core] == addr {
		return true
	}
	if s.headerReg[core] != object.NilPtr {
		panic(fmt.Sprintf("syncblock: core %d already holds header lock %d", core, s.headerReg[core]))
	}
	for i, r := range s.headerReg {
		if i != core && r == addr {
			s.stats.HeaderConflicts++
			return false
		}
	}
	s.headerReg[core] = addr
	s.stats.HeaderAcquisitions++
	return true
}

// UnlockHeader clears core's header-lock register.
func (s *SB) UnlockHeader(core int) {
	s.headerReg[core] = object.NilPtr
}

// HeaderLockOf returns the address in core's header-lock register (NilPtr if
// unlocked).
func (s *SB) HeaderLockOf(core int) object.Addr { return s.headerReg[core] }

// SetBusy sets or clears core's busy bit in the ScanState register.
func (s *SB) SetBusy(core int, b bool) {
	if s.busy[core] != b {
		s.busy[core] = b
		if b {
			s.busyCount++
		} else {
			s.busyCount--
		}
	}
}

// Busy reports core's busy bit.
func (s *SB) Busy(core int) bool { return s.busy[core] }

// AllIdle reports whether no core currently has its busy bit set. Together
// with scan == free this is the algorithm's termination condition; because
// cores are stepped one at a time, the combined check is atomic, exactly as
// the SB hardware performs it.
func (s *SB) AllIdle() bool { return s.busyCount == 0 }

// Barrier registers core's arrival at the synchronizing micro-instruction
// identified by id and reports whether all cores have arrived. Cores poll it
// every cycle until it reports true. Each id is used for one barrier per
// collection cycle.
func (s *SB) Barrier(id, core int) bool {
	for id >= len(s.barriers) {
		s.barriers = append(s.barriers, nil)
		s.arrived = append(s.arrived, 0)
	}
	if s.barriers[id] == nil {
		s.barriers[id] = make([]bool, s.n)
	}
	if arr := s.barriers[id]; !arr[core] {
		arr[core] = true
		s.arrived[id]++
	}
	return s.arrived[id] == s.n
}

// BarrierComplete reports whether every core has already arrived at barrier
// id, without registering an arrival. The machine's fast-forward uses it to
// prove that a core blocked at a synchronizing micro-instruction cannot be
// released this cycle.
func (s *SB) BarrierComplete(id int) bool {
	return id < len(s.arrived) && s.arrived[id] == s.n
}

// HeaderLockConflict reports whether a core other than core currently holds
// addr in its header-lock register — i.e. whether TryLockHeader(core, addr)
// would stall. The fast-forward path uses it to classify a core as dead in
// the header-lock state.
func (s *SB) HeaderLockConflict(core int, addr object.Addr) bool {
	for i, r := range s.headerReg {
		if i != core && r == addr {
			return true
		}
	}
	return false
}

// AddConflictStalls accumulates failed-acquisition counters arithmetically
// on behalf of the machine's fast-forward: a core spinning on a held lock
// would have retried (and failed) the acquisition once per skipped cycle, so
// the skipped retries are added in bulk to keep Stats bit-identical to the
// stepped run.
func (s *SB) AddConflictStalls(scan, free, header int64) {
	s.stats.ScanConflicts += scan
	s.stats.FreeConflicts += free
	s.stats.HeaderConflicts += header
}

// CheckLockOrder validates the fixed lock-ordering scheme scan < header <
// free (paper Section IV, after Habermann): a core holding the free lock may
// hold a header lock and the scan lock is never requested while holding
// either. The machine calls it in debug builds of the step loop; a violation
// indicates a microprogram bug.
func (s *SB) CheckLockOrder() error {
	// The only statically checkable global invariant is that at most one
	// core owns each of scan/free and that header registers are mutually
	// distinct (when set).
	seen := make(map[object.Addr]int)
	for i, r := range s.headerReg {
		if r == object.NilPtr {
			continue
		}
		if j, dup := seen[r]; dup {
			return fmt.Errorf("syncblock: cores %d and %d both hold header lock %d", j, i, r)
		}
		seen[r] = i
	}
	return nil
}
