package syncblock

import (
	"math/rand"
	"testing"

	"hwgc/internal/object"
)

func TestScanLockBasics(t *testing.T) {
	sb := New(4)
	sb.Reset(10, 10)
	if !sb.TryAcquireScan(0) {
		t.Fatal("free lock not acquirable")
	}
	if sb.TryAcquireScan(1) {
		t.Fatal("held lock acquired by another core")
	}
	if !sb.TryAcquireScan(0) {
		t.Fatal("reacquire by owner must succeed")
	}
	sb.SetScan(0, 42)
	if sb.Scan() != 42 {
		t.Fatalf("scan register = %d", sb.Scan())
	}
	sb.ReleaseScan(0)
	// Same-cycle reacquire by another core.
	if !sb.TryAcquireScan(1) {
		t.Fatal("released lock not immediately acquirable")
	}
	if sb.ScanOwner() != 1 {
		t.Fatalf("owner = %d", sb.ScanOwner())
	}
	st := sb.Stats()
	if st.ScanAcquisitions != 2 || st.ScanConflicts != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestFreeLockBasics(t *testing.T) {
	sb := New(2)
	sb.Reset(0, 100)
	if !sb.TryAcquireFree(1) {
		t.Fatal("acquire failed")
	}
	if sb.TryAcquireFree(0) {
		t.Fatal("double acquire")
	}
	sb.SetFree(1, 123)
	if sb.Free() != 123 {
		t.Fatal("free register not written")
	}
	sb.ReleaseFree(1)
	if sb.FreeOwner() != -1 {
		t.Fatal("owner not cleared")
	}
}

func TestWriteWithoutLockPanics(t *testing.T) {
	sb := New(2)
	sb.Reset(0, 0)
	for _, fn := range []func(){
		func() { sb.SetScan(0, 1) },
		func() { sb.SetFree(0, 1) },
		func() { sb.ReleaseScan(0) },
		func() { sb.ReleaseFree(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unlocked register write/release did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestHeaderLockParallelCompare(t *testing.T) {
	sb := New(4)
	sb.Reset(0, 0)
	if !sb.TryLockHeader(0, 500) {
		t.Fatal("first lock failed")
	}
	if sb.TryLockHeader(1, 500) {
		t.Fatal("same address locked twice")
	}
	if !sb.TryLockHeader(1, 501) {
		t.Fatal("different address refused")
	}
	if !sb.TryLockHeader(0, 500) {
		t.Fatal("idempotent relock by owner refused")
	}
	sb.UnlockHeader(0)
	if !sb.TryLockHeader(2, 500) {
		t.Fatal("unlocked address refused")
	}
	if sb.HeaderLockOf(2) != 500 || sb.HeaderLockOf(0) != object.NilPtr {
		t.Fatal("header-lock registers wrong")
	}
	st := sb.Stats()
	if st.HeaderConflicts != 1 {
		t.Fatalf("conflicts = %d", st.HeaderConflicts)
	}
}

func TestHeaderLockMisusePanics(t *testing.T) {
	sb := New(2)
	sb.Reset(0, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil header lock did not panic")
			}
		}()
		sb.TryLockHeader(0, object.NilPtr)
	}()
	sb.TryLockHeader(0, 7)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double header lock by one core did not panic")
			}
		}()
		sb.TryLockHeader(0, 8)
	}()
}

func TestBusyBitsAndTermination(t *testing.T) {
	sb := New(3)
	sb.Reset(0, 0)
	if !sb.AllIdle() {
		t.Fatal("fresh SB not idle")
	}
	sb.SetBusy(1, true)
	if sb.AllIdle() || !sb.Busy(1) {
		t.Fatal("busy bit not registered")
	}
	sb.SetBusy(1, false)
	if !sb.AllIdle() {
		t.Fatal("busy bit not cleared")
	}
}

func TestBarrier(t *testing.T) {
	sb := New(3)
	sb.Reset(0, 0)
	if sb.Barrier(0, 0) {
		t.Fatal("barrier released with one arrival")
	}
	if sb.Barrier(0, 1) {
		t.Fatal("barrier released with two arrivals")
	}
	if !sb.Barrier(0, 2) {
		t.Fatal("barrier not released with all arrivals")
	}
	// Re-polling keeps reporting released; independent id is independent.
	if !sb.Barrier(0, 0) {
		t.Fatal("released barrier regressed")
	}
	if sb.Barrier(1, 0) {
		t.Fatal("independent barrier shares state")
	}
}

func TestResetClearsEverything(t *testing.T) {
	sb := New(2)
	sb.Reset(0, 0)
	sb.TryAcquireScan(0)
	sb.TryLockHeader(1, 9)
	sb.SetBusy(0, true)
	sb.Barrier(0, 0)
	sb.Reset(5, 6)
	if sb.Scan() != 5 || sb.Free() != 6 {
		t.Fatal("registers not reset")
	}
	if sb.ScanOwner() != -1 || sb.HeaderLockOf(1) != object.NilPtr || !sb.AllIdle() {
		t.Fatal("lock state not reset")
	}
	if sb.Barrier(0, 0) {
		t.Fatal("barrier state not reset")
	}
	if st := sb.Stats(); st.ScanAcquisitions != 0 {
		t.Fatal("stats not reset")
	}
}

// TestHeaderLockInvariantUnderRandomOps drives random header lock/unlock
// traffic from all cores and checks after each step that no address is held
// by two cores (the hardware's parallel-compare guarantee).
func TestHeaderLockInvariantUnderRandomOps(t *testing.T) {
	const cores = 8
	sb := New(cores)
	sb.Reset(0, 0)
	rng := rand.New(rand.NewSource(3))
	held := make([]object.Addr, cores)
	for step := 0; step < 20000; step++ {
		c := rng.Intn(cores)
		if held[c] == object.NilPtr {
			addr := object.Addr(1 + rng.Intn(16)) // small range: force conflicts
			if sb.TryLockHeader(c, addr) {
				held[c] = addr
			}
		} else if rng.Intn(2) == 0 {
			sb.UnlockHeader(c)
			held[c] = object.NilPtr
		}
		if err := sb.CheckLockOrder(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Cross-check shadow state.
	for c, a := range held {
		if sb.HeaderLockOf(c) != a {
			t.Fatalf("core %d: register %d, shadow %d", c, sb.HeaderLockOf(c), a)
		}
	}
}

// TestLockFairnessModel verifies that the machine's stepping order gives the
// static-priority semantics: when the lock frees, the first core to try in
// step order wins.
func TestLockFairnessModel(t *testing.T) {
	sb := New(4)
	sb.Reset(0, 0)
	sb.TryAcquireScan(3)
	// Cores 0..2 all fail this "cycle".
	for c := 0; c < 3; c++ {
		if sb.TryAcquireScan(c) {
			t.Fatal("acquired held lock")
		}
	}
	sb.ReleaseScan(3)
	// Next cycle, stepping in index order: core 0 wins.
	for c := 0; c < 3; c++ {
		got := sb.TryAcquireScan(c)
		if (c == 0) != got {
			t.Fatalf("core %d acquisition = %v", c, got)
		}
	}
}
