// Package trace is the software analogue of the prototype's monitoring
// framework (paper Section VI-A): the FPGA could trace up to 32 internal
// signals in each clock cycle or expose hardware performance counters, with
// the data streamed to a measurement PC and analysed offline.
//
// Here, a Monitor attaches to a machine's per-cycle probe, samples the
// interesting internal signals (scan, free, gray population, FIFO depth,
// lock owners, per-core states) at a configurable interval into a bounded
// ring buffer, and can export the trace as CSV for offline analysis.
package trace

import (
	"fmt"
	"io"

	"hwgc/internal/machine"
	"hwgc/internal/object"
)

// Sample is one observation of the coprocessor's internal signals.
type Sample struct {
	Cycle     int64
	Scan      object.Addr
	Free      object.Addr
	GrayWords int64 // free - scan: the work list size in words
	FIFODepth int
	ScanOwner int // core holding the scan lock, -1 if none
	FreeOwner int // core holding the free lock, -1 if none
	BusyCores int // cores with their ScanState busy bit set
}

// Monitor samples a machine's signals every Interval cycles into a ring
// buffer holding the most recent MaxSamples observations.
type Monitor struct {
	Interval   int64
	MaxSamples int

	samples []Sample
	start   int
	total   int64
}

// NewMonitor creates a monitor sampling every interval cycles, keeping up to
// maxSamples most recent samples.
func NewMonitor(interval int64, maxSamples int) *Monitor {
	if interval < 1 {
		interval = 1
	}
	if maxSamples < 1 {
		maxSamples = 1
	}
	return &Monitor{Interval: interval, MaxSamples: maxSamples}
}

// Attach registers the monitor as one of m's per-cycle observers via
// AddProbe, so it coexists with other probes (a snapshot recorder, test
// hooks) in registration order.
func (t *Monitor) Attach(m *machine.Machine) {
	m.AddProbe(func(cycle int64, m *machine.Machine) {
		if cycle%t.Interval != 0 {
			return
		}
		t.record(t.sample(cycle, m))
	})
}

func (t *Monitor) sample(cycle int64, m *machine.Machine) Sample {
	sb := m.SB()
	busy := 0
	for i := 0; i < sb.Cores(); i++ {
		if sb.Busy(i) {
			busy++
		}
	}
	return Sample{
		Cycle:     cycle,
		Scan:      sb.Scan(),
		Free:      sb.Free(),
		GrayWords: int64(sb.Free()) - int64(sb.Scan()),
		FIFODepth: m.FIFODepth(),
		ScanOwner: sb.ScanOwner(),
		FreeOwner: sb.FreeOwner(),
		BusyCores: busy,
	}
}

func (t *Monitor) record(s Sample) {
	t.total++
	if len(t.samples) < t.MaxSamples {
		t.samples = append(t.samples, s)
		return
	}
	t.samples[t.start] = s
	t.start = (t.start + 1) % t.MaxSamples
}

// Len returns the number of retained samples.
func (t *Monitor) Len() int { return len(t.samples) }

// Total returns the number of samples taken (including evicted ones).
func (t *Monitor) Total() int64 { return t.total }

// Samples returns the retained samples in chronological order.
func (t *Monitor) Samples() []Sample {
	out := make([]Sample, 0, len(t.samples))
	for i := 0; i < len(t.samples); i++ {
		out = append(out, t.samples[(t.start+i)%len(t.samples)])
	}
	return out
}

// Reset discards all samples.
func (t *Monitor) Reset() {
	t.samples = t.samples[:0]
	t.start = 0
	t.total = 0
}

// MaxGrayWords returns the largest observed work-list size in words.
func (t *Monitor) MaxGrayWords() int64 {
	var max int64
	for _, s := range t.Samples() {
		if s.GrayWords > max {
			max = s.GrayWords
		}
	}
	return max
}

// WriteCSV writes the retained samples as CSV with a header row.
func (t *Monitor) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,scan,free,gray_words,fifo_depth,scan_owner,free_owner,busy_cores"); err != nil {
		return err
	}
	for _, s := range t.Samples() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.Scan, s.Free, s.GrayWords, s.FIFODepth, s.ScanOwner, s.FreeOwner, s.BusyCores); err != nil {
			return err
		}
	}
	return nil
}

// MeanBusyCores returns the average number of busy cores over the retained
// samples — a utilization summary for scaling analyses.
func (t *Monitor) MeanBusyCores() float64 {
	s := t.Samples()
	if len(s) == 0 {
		return 0
	}
	var sum int64
	for _, x := range s {
		sum += int64(x.BusyCores)
	}
	return float64(sum) / float64(len(s))
}

// MeanGrayWords returns the average work-list size over the retained
// samples.
func (t *Monitor) MeanGrayWords() float64 {
	s := t.Samples()
	if len(s) == 0 {
		return 0
	}
	var sum int64
	for _, x := range s {
		sum += x.GrayWords
	}
	return float64(sum) / float64(len(s))
}
