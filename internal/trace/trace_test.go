package trace

import (
	"strings"
	"testing"

	"hwgc/internal/gcalgo"
	"hwgc/internal/machine"
	"hwgc/internal/workload"
)

func collectWithMonitor(t *testing.T, interval int64, maxSamples int) (*Monitor, machine.Stats) {
	t.Helper()
	spec, err := workload.Get("jlisp")
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Plan(1, 3).BuildHeap(2.0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := gcalgo.Snapshot(h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(h, machine.Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(interval, maxSamples)
	mon.Attach(m)
	st, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if err := gcalgo.VerifyCollection(before, h); err != nil {
		t.Fatal(err)
	}
	return mon, st
}

func TestMonitorSamples(t *testing.T) {
	mon, st := collectWithMonitor(t, 8, 1<<16)
	if mon.Len() == 0 {
		t.Fatal("no samples")
	}
	samples := mon.Samples()
	var prev int64 = -1
	for _, s := range samples {
		if s.Cycle <= prev {
			t.Fatalf("samples out of order: %d after %d", s.Cycle, prev)
		}
		prev = s.Cycle
		if s.Cycle%8 != 0 {
			t.Fatalf("sample at cycle %d violates interval", s.Cycle)
		}
		if s.Free < s.Scan {
			t.Fatalf("free %d < scan %d", s.Free, s.Scan)
		}
		if s.GrayWords != int64(s.Free)-int64(s.Scan) {
			t.Fatalf("gray words inconsistent")
		}
		if s.BusyCores < 0 || s.BusyCores > 4 {
			t.Fatalf("busy cores %d", s.BusyCores)
		}
	}
	if mon.MaxGrayWords() <= 0 {
		t.Fatal("work list never grew?")
	}
	if samples[len(samples)-1].Cycle > st.Cycles {
		t.Fatal("sample beyond collection end")
	}
}

func TestMonitorRingEviction(t *testing.T) {
	mon, _ := collectWithMonitor(t, 1, 16)
	if mon.Len() != 16 {
		t.Fatalf("retained %d, want 16", mon.Len())
	}
	if mon.Total() <= 16 {
		t.Fatalf("total %d suggests no eviction happened", mon.Total())
	}
	s := mon.Samples()
	for i := 1; i < len(s); i++ {
		if s[i].Cycle != s[i-1].Cycle+1 {
			t.Fatalf("ring returned non-contiguous tail: %d after %d", s[i].Cycle, s[i-1].Cycle)
		}
	}
}

func TestMonitorCSV(t *testing.T) {
	mon, _ := collectWithMonitor(t, 16, 1024)
	var b strings.Builder
	if err := mon.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != mon.Len()+1 {
		t.Fatalf("CSV has %d lines for %d samples", len(lines), mon.Len())
	}
	if !strings.HasPrefix(lines[0], "cycle,scan,free") {
		t.Fatalf("CSV header wrong: %q", lines[0])
	}
	for _, ln := range lines[1:] {
		if strings.Count(ln, ",") != 7 {
			t.Fatalf("CSV row malformed: %q", ln)
		}
	}
}

func TestMonitorReset(t *testing.T) {
	mon, _ := collectWithMonitor(t, 4, 64)
	mon.Reset()
	if mon.Len() != 0 || mon.Total() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMonitorDefensiveParams(t *testing.T) {
	m := NewMonitor(0, 0)
	if m.Interval != 1 || m.MaxSamples != 1 {
		t.Fatalf("defaults not applied: %+v", m)
	}
}

func TestMonitorAverages(t *testing.T) {
	mon, _ := collectWithMonitor(t, 1, 1<<16)
	if mon.MeanBusyCores() <= 0 || mon.MeanBusyCores() > 4 {
		t.Fatalf("mean busy cores %f out of range", mon.MeanBusyCores())
	}
	if mon.MeanGrayWords() <= 0 {
		t.Fatalf("mean gray words %f", mon.MeanGrayWords())
	}
	empty := NewMonitor(1, 4)
	if empty.MeanBusyCores() != 0 || empty.MeanGrayWords() != 0 {
		t.Fatal("empty monitor averages not zero")
	}
}
