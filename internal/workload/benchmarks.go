package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Spec is a named benchmark workload.
type Spec struct {
	Name string
	// Desc summarizes the graph shape and the paper property it reproduces.
	Desc string
	// Plan builds the object graph. scale ≥ 1 multiplies the problem size;
	// seed drives all randomized choices deterministically.
	Plan func(scale int, seed int64) *Plan
}

// The registry of paper benchmarks, in the order of the paper's tables.
var specs = []Spec{
	{
		Name: "compress",
		Desc: "chain of large buffer objects; highly linear graph, no object-level parallelism beyond ~2",
		Plan: compressPlan,
	},
	{
		Name: "cup",
		Desc: "parser tables with enormous breadth; gray population overflows the header FIFO",
		Plan: cupPlan,
	},
	{
		Name: "db",
		Desc: "index pages and records with a shared string pool; scales well",
		Plan: dbPlan,
	},
	{
		Name: "javac",
		Desc: "AST whose nodes reference a few hot symbol-table hubs; heavy header-lock contention",
		Plan: javacPlan,
	},
	{
		Name: "javacc",
		Desc: "wide parse tree; scales well",
		Plan: javaccPlan,
	},
	{
		Name: "jflex",
		Desc: "long chain of DFA states with small bushy transition tables; limited parallelism",
		Plan: jflexPlan,
	},
	{
		Name: "jlisp",
		Desc: "small heap of cons cells and atoms; the smallest benchmark",
		Plan: jlispPlan,
	},
	{
		Name: "search",
		Desc: "binary search tree degenerated to a path by sorted insertion; no parallelism",
		Plan: searchPlan,
	},
	{
		Name: "blob",
		Desc: "a handful of huge buffer objects; object-level parallelism is bounded by the object count, sub-object strides are not",
		Plan: blobPlan,
	},
}

// Names returns the benchmark names in table order.
func Names() []string {
	n := make([]string, len(specs))
	for i, s := range specs {
		n[i] = s.Name
	}
	return n
}

// Get returns the named benchmark spec.
func Get(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	all := Names()
	sort.Strings(all)
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, all)
}

// All returns every benchmark spec in table order.
func All() []Spec { return append([]Spec(nil), specs...) }

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// compressPlan models the SPEC compress loop: a chain of compression-buffer
// objects, each holding a large data block and a small auxiliary leaf. The
// chain serializes discovery, so at most ~two objects are in flight: the
// paper's Table I shows the work list almost never empty at 2 cores yet
// ~99 % empty at 4+, with no significant speedup (Fig. 5).
func compressPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	n := 15000 * scale
	head := p.Chain(n, 1, 3)
	p.AddRoot(head)
	p.sprinkleGarbage(rng, n/3, 8)
	p.FillData(rng)
	return p
}

// searchPlan models a binary search tree built by sorted insertion: a pure
// path of two-pointer nodes. Discovery is fully serialized (Table I: 73.7 %
// empty already at 2 cores).
func searchPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	root := p.DegeneratePath(15000*scale, 0)
	p.AddRoot(root)
	p.sprinkleGarbage(rng, 2000*scale, 4)
	p.FillData(rng)
	return p
}

// cupPlan models the CUP parser generator's action tables: a root table
// fanning out to second-level tables fanning out to tens of thousands of
// small entries. The gray population peaks far above the 32k-entry header
// FIFO, forcing scan-critical-section memory loads (Table II: cup is the
// benchmark with significant scan-lock stalls).
func cupPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	const fan1 = 160
	fan2 := 280 * scale
	root := p.NewObj(fan1, 2)
	for i := 0; i < fan1; i++ {
		t := p.NewObj(fan2, 2)
		p.Link(root, i, t)
		for j := 0; j < fan2; j++ {
			leaf := p.NewObj(0, 2)
			p.Link(t, j, leaf)
		}
	}
	p.AddRoot(root)
	p.sprinkleGarbage(rng, 4000, 4)
	p.FillData(rng)
	return p
}

// dbPlan models an in-memory database: chained index pages referencing
// fixed-shape records, whose key/value fields point into a shared string
// pool. Wide fan-out at every level; scales well.
func dbPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	nStrings := 2048
	strings := make([]int, nStrings)
	for i := range strings {
		strings[i] = p.NewObj(0, 2+rng.Intn(8))
	}
	const pageFan = 128
	nPages := 56 * scale
	var firstPage, prevPage = -1, -1
	for pg := 0; pg < nPages; pg++ {
		page := p.NewObj(pageFan+1, 4) // slot 0: next page
		if prevPage >= 0 {
			p.Link(prevPage, 0, page)
		} else {
			firstPage = page
		}
		prevPage = page
		for r := 0; r < pageFan; r++ {
			rec := p.NewObj(2, 2)
			p.Link(rec, 0, strings[rng.Intn(nStrings)])
			p.Link(rec, 1, strings[rng.Intn(nStrings)])
			p.Link(page, 1+r, rec)
		}
	}
	p.AddRoot(firstPage)
	p.sprinkleGarbage(rng, 3000*scale, 6)
	p.FillData(rng)
	return p
}

// javacPlan models a compiler's AST plus symbol table: a bushy expression
// tree whose every node also references one of a handful of hot symbol
// objects, with heavily skewed popularity. Many objects referencing few
// objects is exactly the situation the paper identifies as the source of
// javac's header-lock stalls (Table II), and the target of the unlocked
// mark-read optimization.
func javacPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	const nSyms = 16
	syms := make([]int, nSyms)
	for i := range syms {
		syms[i] = p.NewObj(1, 6) // symbols link to a shared scope object
	}
	scope := p.NewObj(0, 8)
	for _, s := range syms {
		p.Link(s, 0, scope)
	}
	nNodes := 15000 * scale
	// Build a random bushy tree over the AST nodes: each node has 2 child
	// slots plus 1 symbol slot.
	nodes := make([]int, nNodes)
	for i := range nodes {
		nodes[i] = p.NewObj(3, 2)
		p.Link(nodes[i], 2, syms[zipf(rng, nSyms)])
	}
	for i := 1; i < nNodes; i++ {
		parent := nodes[rng.Intn(i)]
		slot := rng.Intn(2)
		// Chain into free slots; if occupied, descend once then give up in
		// favour of keeping the tree bushy and shallow.
		if p.Objs[parent].Ptrs[slot] >= 0 {
			slot = 1 - slot
		}
		if p.Objs[parent].Ptrs[slot] >= 0 {
			parent = p.Objs[parent].Ptrs[slot]
			slot = rng.Intn(2)
			if p.Objs[parent].Ptrs[slot] >= 0 {
				slot = 1 - slot
			}
		}
		if p.Objs[parent].Ptrs[slot] < 0 {
			p.Link(parent, slot, nodes[i])
		} else {
			// Last resort: hang it off the scope-free symbol slot of a
			// random earlier node's unused child slot chain — make it a
			// root so it is not lost.
			p.AddRoot(nodes[i])
		}
	}
	p.AddRoot(nodes[0])
	p.sprinkleGarbage(rng, 4000*scale, 4)
	p.FillData(rng)
	return p
}

// javaccPlan models JavaCC's wide parse tree: branching factor 8, shallow,
// with leaf token objects. Plenty of object-level parallelism.
func javaccPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	root := p.NewObj(scale, 2)
	for i := 0; i < scale; i++ {
		t := p.BalancedTree(8, 5, 1, 6)
		p.Link(root, i, t)
	}
	p.AddRoot(root)
	p.sprinkleGarbage(rng, 5000, 4)
	p.FillData(rng)
	return p
}

// jflexPlan models JFlex's scanner generator: a long chain of DFA states,
// each carrying a small bushy transition table. Parallelism is limited to
// the burst width, so starvation appears only at higher core counts
// (Table I: 5.5 % empty at 8 cores, 35.4 % at 16).
func jflexPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	nStates := 1100 * scale
	var head, prev = -1, -1
	for i := 0; i < nStates; i++ {
		st := p.NewObj(2, 4) // slot 0: next state, slot 1: transition table
		table := p.BalancedTree(4, 1, 2, 5)
		p.Link(st, 1, table)
		if prev >= 0 {
			p.Link(prev, 0, st)
		} else {
			head = st
		}
		prev = st
	}
	p.AddRoot(head)
	p.sprinkleGarbage(rng, 1500*scale, 4)
	p.FillData(rng)
	return p
}

// blobPlan is the extension workload for the Section VII stride experiment:
// a handful of huge buffer objects (image planes, compression ring buffers)
// under a single directory object. The object count bounds the object-level
// parallelism — with six objects, adding cores beyond six is useless no
// matter how the work list is managed — while stride (cache-line)
// granularity lets all cores share each bulk copy. (Note that *chains* of
// large objects do not defeat object granularity: the next pointer sits at
// the start of the body, so discovery cascades far ahead of the copies.)
func blobPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	n := 6 * scale
	dir := p.NewObj(n, 2)
	for i := 0; i < n; i++ {
		blob := p.NewObj(0, 3800)
		p.Link(dir, i, blob)
	}
	p.AddRoot(dir)
	p.sprinkleGarbage(rng, 32*scale, 32)
	p.FillData(rng)
	return p
}

// jlispPlan models a small Lisp interpreter heap: cons cells and atoms in
// random trees. The smallest benchmark (the paper's jlisp collection cycle
// is an order of magnitude shorter than the others).
func jlispPlan(scale int, seed int64) *Plan {
	rng := newRNG(seed)
	p := &Plan{}
	nAtoms := 400 * scale
	atoms := make([]int, nAtoms)
	for i := range atoms {
		atoms[i] = p.NewObj(0, 1)
	}
	var build func(depth int) int
	build = func(depth int) int {
		if depth == 0 || rng.Intn(8) == 0 {
			return atoms[rng.Intn(nAtoms)]
		}
		c := p.NewObj(2, 0)
		p.Link(c, 0, build(depth-1))
		p.Link(c, 1, build(depth-1))
		return c
	}
	nLists := 24 * scale
	root := p.NewObj(nLists, 0)
	for i := 0; i < nLists; i++ {
		p.Link(root, i, build(7))
	}
	p.AddRoot(root)
	p.sprinkleGarbage(rng, 500*scale, 2)
	p.FillData(rng)
	return p
}
