package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	orig := jlispPlan(1, 5)
	var buf bytes.Buffer
	if err := WritePlan(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("round trip changed the plan")
	}
	// And it still builds a valid heap.
	if _, err := got.BuildHeap(2.0); err != nil {
		t.Fatal(err)
	}
}

func TestReadPlanValidation(t *testing.T) {
	cases := map[string]string{
		"empty":           `{"Objs":[],"Roots":[]}`,
		"pi mismatch":     `{"Objs":[{"Pi":2,"Delta":0,"Ptrs":[-1],"Data":[]}],"Roots":[0]}`,
		"delta mismatch":  `{"Objs":[{"Pi":0,"Delta":1,"Ptrs":[],"Data":[]}],"Roots":[0]}`,
		"wild pointer":    `{"Objs":[{"Pi":1,"Delta":0,"Ptrs":[5],"Data":[]}],"Roots":[0]}`,
		"negative target": `{"Objs":[{"Pi":1,"Delta":0,"Ptrs":[-2],"Data":[]}],"Roots":[0]}`,
		"wild root":       `{"Objs":[{"Pi":0,"Delta":0,"Ptrs":[],"Data":[]}],"Roots":[3]}`,
		"pi out of range": `{"Objs":[{"Pi":99999,"Delta":0,"Ptrs":[],"Data":[]}],"Roots":[0]}`,
		"unknown field":   `{"Objs":[],"Roots":[],"Bogus":1}`,
		"not json":        `hello`,
	}
	for name, in := range cases {
		if _, err := ReadPlan(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}

	ok := `{"Objs":[{"Pi":1,"Delta":1,"Ptrs":[0],"Data":[7]}],"Roots":[0,-1]}`
	p, err := ReadPlan(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if p.Objs[0].Ptrs[0] != 0 || p.Objs[0].Data[0] != 7 {
		t.Fatal("content lost")
	}
}
