// Package workload generates the synthetic object graphs that stand in for
// the paper's Java benchmarks (compress, cup, db, javac, javacc, jflex,
// jlisp, search).
//
// The original measurements ran Java programs compiled by the authors'
// static compiler on their FPGA prototype. We cannot run those, so each
// benchmark is replaced by a deterministic, seeded graph generator whose
// *shape* reproduces the property the paper attributes to that benchmark:
//
//   - compress, search: highly linear object graphs with (almost) no
//     object-level parallelism (Section VI-B, Table I);
//   - jflex: limited parallelism — long chain with small bushy bursts;
//   - cup: enormous breadth, so the number of simultaneously gray objects
//     overflows the 32k-entry header FIFO (Table II discussion);
//   - javac: a few hub objects referenced by very many objects, causing
//     header-lock contention (Table II discussion);
//   - db, javacc, jlisp: record/tree/cons graphs that parallelize well.
//
// A workload is first constructed as a Plan — a pure-Go description of the
// graph — and then realized into a heap. The plan form also serves the test
// suite, which needs to know the intended graph independently of the heap.
package workload

import (
	"fmt"
	"math/rand"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

// PlanObj describes one object of a planned graph. Ptrs holds indices into
// the plan's object list, or -1 for nil slots.
type PlanObj struct {
	Pi    int
	Delta int
	Ptrs  []int
	Data  []object.Word
}

// Plan is a complete description of a heap to build: a list of objects (in
// allocation order) and the indices of the objects referenced by the root
// set. Objects that are neither roots nor referenced become garbage — they
// occupy fromspace but must not survive a collection.
type Plan struct {
	Objs  []PlanObj
	Roots []int
}

// NewObj appends an object with the given shape, all pointer slots nil and
// all data words zero, and returns its index.
func (p *Plan) NewObj(pi, delta int) int {
	p.Objs = append(p.Objs, PlanObj{
		Pi:    pi,
		Delta: delta,
		Ptrs:  makeNilPtrs(pi),
		Data:  make([]object.Word, delta),
	})
	return len(p.Objs) - 1
}

func makeNilPtrs(pi int) []int {
	s := make([]int, pi)
	for i := range s {
		s[i] = -1
	}
	return s
}

// Link sets pointer slot slot of object from to refer to object to.
func (p *Plan) Link(from, slot, to int) {
	p.Objs[from].Ptrs[slot] = to
}

// AddRoot registers object idx (or -1 for a nil root) in the root set.
func (p *Plan) AddRoot(idx int) {
	p.Roots = append(p.Roots, idx)
}

// FillData fills every data word of every object with seeded random values,
// which maximizes the verification oracle's sensitivity to copy bugs.
func (p *Plan) FillData(rng *rand.Rand) {
	for i := range p.Objs {
		for j := range p.Objs[i].Data {
			p.Objs[i].Data[j] = rng.Uint64()
		}
	}
}

// Words returns the total heap words the plan's objects occupy.
func (p *Plan) Words() int {
	w := 0
	for i := range p.Objs {
		w += object.Size(p.Objs[i].Pi, p.Objs[i].Delta)
	}
	return w
}

// LiveStats returns the number and total words of the objects reachable
// from the plan's roots.
func (p *Plan) LiveStats() (objects, words int) {
	seen := make([]bool, len(p.Objs))
	var stack []int
	for _, r := range p.Roots {
		if r >= 0 && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		objects++
		words += object.Size(p.Objs[i].Pi, p.Objs[i].Delta)
		for _, c := range p.Objs[i].Ptrs {
			if c >= 0 && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return objects, words
}

// Realize allocates the plan's objects into h (in plan order), wires their
// pointer slots and data words, and installs the root set. The heap's
// current space must have room for Words() words.
func (p *Plan) Realize(h *heap.Heap) error {
	addrs := make([]object.Addr, len(p.Objs))
	for i := range p.Objs {
		o := &p.Objs[i]
		a, err := h.Alloc(o.Pi, o.Delta)
		if err != nil {
			return fmt.Errorf("workload: realizing object %d/%d: %w", i, len(p.Objs), err)
		}
		addrs[i] = a
		for j, w := range o.Data {
			h.SetData(a, j, w)
		}
	}
	for i := range p.Objs {
		for s, t := range p.Objs[i].Ptrs {
			if t >= 0 {
				h.SetPtr(addrs[i], s, addrs[t])
			}
		}
	}
	h.ClearRoots()
	for _, r := range p.Roots {
		if r < 0 {
			h.AddRoot(object.NilPtr)
		} else {
			h.AddRoot(addrs[r])
		}
	}
	return nil
}

// BuildHeap creates a heap sized for the plan (semispaces hold the plan plus
// headroom) and realizes the plan into it. The paper dimensioned its heaps
// at twice the minimal size; headroom 2.0 reproduces that rule of thumb
// relative to the live set.
func (p *Plan) BuildHeap(headroom float64) (*heap.Heap, error) {
	if headroom < 1.05 {
		headroom = 1.05
	}
	semi := int(float64(p.Words())*headroom) + 64
	h := heap.New(semi)
	if err := p.Realize(h); err != nil {
		return nil, err
	}
	return h, nil
}

// sprinkleGarbage appends n unreachable filler objects (π=0, δ=delta) to the
// plan, modelling the dead objects a real mutator leaves in fromspace.
// Copying collectors never touch garbage, so this exercises exactly that
// invariant.
func (p *Plan) sprinkleGarbage(rng *rand.Rand, n, delta int) {
	for i := 0; i < n; i++ {
		p.NewObj(0, 1+rng.Intn(delta))
	}
}
