package workload

import "math/rand"

// Generic graph shapes used by the benchmark builders, the examples, and the
// test suite.

// Chain appends a linked list of n nodes (π=ptrsPerNode ≥ 1, slot 0 is the
// next-pointer) and returns the index of the head. Extra pointer slots stay
// nil unless wired by the caller.
func (p *Plan) Chain(n, ptrsPerNode, delta int) (head int) {
	if n <= 0 {
		return -1
	}
	head = p.NewObj(ptrsPerNode, delta)
	prev := head
	for i := 1; i < n; i++ {
		o := p.NewObj(ptrsPerNode, delta)
		p.Link(prev, 0, o)
		prev = o
	}
	return head
}

// BalancedTree appends a complete tree with the given branching factor and
// depth (depth 0 = a single leaf) and returns the root index. Interior nodes
// have π=branch and δ=innerDelta; leaves have π=0 and δ=leafDelta.
func (p *Plan) BalancedTree(branch, depth, innerDelta, leafDelta int) int {
	if depth == 0 {
		return p.NewObj(0, leafDelta)
	}
	root := p.NewObj(branch, innerDelta)
	for i := 0; i < branch; i++ {
		c := p.BalancedTree(branch, depth-1, innerDelta, leafDelta)
		p.Link(root, i, c)
	}
	return root
}

// DegeneratePath appends a binary-tree path of n nodes — the shape a binary
// search tree assumes under sorted insertion. Each node has two pointer
// slots; only one is used, alternating sides, so the graph is maximally
// linear while keeping a realistic node shape.
func (p *Plan) DegeneratePath(n, delta int) int {
	if n <= 0 {
		return -1
	}
	root := p.NewObj(2, delta)
	prev := root
	for i := 1; i < n; i++ {
		o := p.NewObj(2, delta)
		p.Link(prev, i%2, o)
		prev = o
	}
	return root
}

// RandomGraph appends n nodes with random shapes and random wiring —
// including cycles, self-loops, shared children and nil slots — and returns
// the index of the designated entry node. It is the workhorse of the
// property-based tests.
func (p *Plan) RandomGraph(rng *rand.Rand, n, maxPi, maxDelta int) int {
	if n <= 0 {
		return -1
	}
	base := len(p.Objs)
	for i := 0; i < n; i++ {
		p.NewObj(rng.Intn(maxPi+1), rng.Intn(maxDelta+1))
	}
	for i := base; i < base+n; i++ {
		o := &p.Objs[i]
		for s := range o.Ptrs {
			switch rng.Intn(5) {
			case 0: // nil
			case 1: // self-loop
				o.Ptrs[s] = i
			default: // arbitrary node, forward or backward (cycles)
				o.Ptrs[s] = base + rng.Intn(n)
			}
		}
	}
	// Make the entry node reach a decent fraction of the graph by wiring a
	// random spanning chain through it.
	entry := base
	prev := entry
	for i := base + 1; i < base+n; i++ {
		if len(p.Objs[prev].Ptrs) == 0 {
			prev = i
			continue
		}
		p.Objs[prev].Ptrs[rng.Intn(len(p.Objs[prev].Ptrs))] = i
		prev = i
	}
	return entry
}

// zipf draws an index in [0,n) with a heavy skew toward 0, approximating the
// reference popularity of symbol-table entries (the javac hub effect).
func zipf(rng *rand.Rand, n int) int {
	f := rng.Float64()
	f = f * f
	return int(f * f * float64(n))
}
