package workload

import (
	"fmt"

	"hwgc/internal/object"
)

// Validate checks the structural invariants a plan must satisfy before it
// can be realized into a heap: object shapes within the header encoding's
// bounds, slot lists matching the declared shapes, and every pointer or
// root index either -1 (nil) or a valid object index. The JSON codec in
// internal/plan calls this on every decoded plan.
func (p *Plan) Validate() error {
	for i := range p.Objs {
		o := &p.Objs[i]
		if o.Pi < 0 || o.Pi > object.MaxPi {
			return fmt.Errorf("workload: object %d: π=%d out of range [0,%d]", i, o.Pi, object.MaxPi)
		}
		if o.Delta < 0 || o.Delta > object.MaxDelta {
			return fmt.Errorf("workload: object %d: δ=%d out of range [0,%d]", i, o.Delta, object.MaxDelta)
		}
		if len(o.Ptrs) != o.Pi {
			return fmt.Errorf("workload: object %d: %d pointer entries for π=%d", i, len(o.Ptrs), o.Pi)
		}
		if len(o.Data) != o.Delta {
			return fmt.Errorf("workload: object %d: %d data words for δ=%d", i, len(o.Data), o.Delta)
		}
		for s, t := range o.Ptrs {
			if t < -1 || t >= len(p.Objs) {
				return fmt.Errorf("workload: object %d pointer %d: target %d out of range", i, s, t)
			}
		}
	}
	if len(p.Objs) == 0 {
		return fmt.Errorf("workload: plan has no objects")
	}
	for i, r := range p.Roots {
		if r < -1 || r >= len(p.Objs) {
			return fmt.Errorf("workload: root %d: target %d out of range", i, r)
		}
	}
	return nil
}
