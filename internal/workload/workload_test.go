package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hwgc/internal/gcalgo"
	"hwgc/internal/object"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"compress", "cup", "db", "javac", "javacc", "jflex", "jlisp", "search", "blob"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for _, n := range names {
		s, err := Get(n)
		if err != nil || s.Name != n || s.Desc == "" || s.Plan == nil {
			t.Fatalf("spec %q broken: %+v err=%v", n, s, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(All()) != len(want) {
		t.Fatal("All() wrong length")
	}
}

func TestAllPlansBuildAndVerify(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			plan := spec.Plan(1, 123)
			liveObj, liveWords := plan.LiveStats()
			if liveObj <= 0 || liveWords <= 0 {
				t.Fatalf("no live objects")
			}
			if liveWords >= plan.Words() {
				t.Fatalf("no garbage in plan: live %d of total %d", liveWords, plan.Words())
			}
			h, err := plan.BuildHeap(2.0)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.CheckIntegrity(); err != nil {
				t.Fatal(err)
			}
			// Snapshot finds exactly the plan's live set.
			g, err := gcalgo.Snapshot(h)
			if err != nil {
				t.Fatal(err)
			}
			if len(g.Nodes) != liveObj {
				t.Fatalf("snapshot found %d nodes, plan says %d", len(g.Nodes), liveObj)
			}
			if g.LiveWords() != liveWords {
				t.Fatalf("snapshot words %d, plan says %d", g.LiveWords(), liveWords)
			}
		})
	}
}

func TestPlansAreDeterministic(t *testing.T) {
	for _, spec := range All() {
		a := spec.Plan(1, 7)
		b := spec.Plan(1, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different plans", spec.Name)
		}
		c := spec.Plan(1, 8)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical plans", spec.Name)
		}
	}
}

func TestScaleGrowsPlans(t *testing.T) {
	for _, spec := range All() {
		_, w1 := spec.Plan(1, 7).LiveStats()
		_, w2 := spec.Plan(2, 7).LiveStats()
		if w2 < w1*3/2 {
			t.Errorf("%s: scale 2 live words %d not appreciably larger than %d", spec.Name, w2, w1)
		}
	}
}

// maxFrontier computes the peak work-list size (in objects) of a Cheney
// traversal of the plan — the amount of object-level parallelism available.
func maxFrontier(p *Plan) int {
	seen := make([]bool, len(p.Objs))
	var queue []int
	for _, r := range p.Roots {
		if r >= 0 && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	head, peak := 0, 0
	for head < len(queue) {
		if d := len(queue) - head; d > peak {
			peak = d
		}
		o := queue[head]
		head++
		for _, c := range p.Objs[o].Ptrs {
			if c >= 0 && !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return peak
}

// TestShapeProperties checks the graph-shape claims the benchmarks exist to
// reproduce (paper Table I / Table II discussion).
func TestShapeProperties(t *testing.T) {
	frontier := map[string]int{}
	for _, spec := range All() {
		frontier[spec.Name] = maxFrontier(spec.Plan(1, 42))
	}
	// blob: a handful of huge objects — the frontier (and with it the
	// object-level parallelism) is bounded by the blob count.
	if f := frontier["blob"]; f < 4 || f > 8 {
		t.Errorf("blob frontier %d, want the blob count (6)", f)
	}
	// Linear benchmarks: frontier stays tiny.
	if frontier["search"] > 3 {
		t.Errorf("search frontier %d, want ≤3 (pure path)", frontier["search"])
	}
	if frontier["compress"] > 4 {
		t.Errorf("compress frontier %d, want ≤4 (chain)", frontier["compress"])
	}
	// jflex: limited (burst-bounded) parallelism.
	if f := frontier["jflex"]; f < 4 || f > 64 {
		t.Errorf("jflex frontier %d, want small burst", f)
	}
	// cup: must exceed the 32k header FIFO.
	if frontier["cup"] <= 32*1024 {
		t.Errorf("cup frontier %d, must exceed 32768 to overflow the FIFO", frontier["cup"])
	}
	// Scalable benchmarks: comfortably more parallelism than 16 cores.
	for _, b := range []string{"db", "javac", "javacc", "jlisp"} {
		if frontier[b] < 64 {
			t.Errorf("%s frontier %d, want ≥64", b, frontier[b])
		}
	}
}

// TestJavacHubSkew checks the javac reference-popularity skew: the hottest
// object must attract a large share of all incoming references.
func TestJavacHubSkew(t *testing.T) {
	p := javacPlan(1, 42)
	indeg := make(map[int]int)
	for i := range p.Objs {
		for _, c := range p.Objs[i].Ptrs {
			if c >= 0 {
				indeg[c]++
			}
		}
	}
	liveObj, _ := p.LiveStats()
	max := 0
	for _, d := range indeg {
		if d > max {
			max = d
		}
	}
	if max < liveObj/4 {
		t.Errorf("hottest hub has %d references for %d live objects; want heavy skew", max, liveObj)
	}
}

func TestPlanPrimitives(t *testing.T) {
	p := &Plan{}
	a := p.NewObj(2, 1)
	b := p.NewObj(0, 0)
	p.Link(a, 1, b)
	p.AddRoot(a)
	p.AddRoot(-1)
	if p.Objs[a].Ptrs[0] != -1 || p.Objs[a].Ptrs[1] != b {
		t.Fatal("Link wrong")
	}
	if p.Words() != (2+2+1)+2 {
		t.Fatalf("Words = %d", p.Words())
	}
	obj, words := p.LiveStats()
	if obj != 2 || words != p.Words() {
		t.Fatalf("LiveStats = %d,%d", obj, words)
	}
	h, err := p.BuildHeap(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumRoots() != 2 || h.Root(1) != object.NilPtr {
		t.Fatal("roots not realized")
	}
	if h.Ptr(h.Root(0), 1) == object.NilPtr {
		t.Fatal("edge not realized")
	}
}

func TestChainAndTreeShapes(t *testing.T) {
	p := &Plan{}
	head := p.Chain(5, 1, 0)
	n := 0
	for cur := head; cur >= 0; cur = p.Objs[cur].Ptrs[0] {
		n++
		if n > 10 {
			t.Fatal("chain does not terminate")
		}
	}
	if n != 5 {
		t.Fatalf("chain length %d", n)
	}

	p2 := &Plan{}
	root := p2.BalancedTree(3, 2, 1, 2)
	p2.AddRoot(root)
	obj, _ := p2.LiveStats()
	if obj != 1+3+9 {
		t.Fatalf("tree has %d nodes, want 13", obj)
	}

	p3 := &Plan{}
	r3 := p3.DegeneratePath(7, 1)
	p3.AddRoot(r3)
	if f := maxFrontier(p3); f > 2 {
		t.Fatalf("degenerate path frontier %d", f)
	}
}

func TestRandomGraphReachabilityQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%60
		rng := rand.New(rand.NewSource(seed))
		p := &Plan{}
		entry := p.RandomGraph(rng, n, 3, 4)
		p.AddRoot(entry)
		p.FillData(rng)
		liveObj, _ := p.LiveStats()
		if liveObj < 1 || liveObj > n {
			return false
		}
		h, err := p.BuildHeap(2.0)
		if err != nil {
			return false
		}
		return h.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := zipf(rng, 10)
		if v < 0 || v >= 10 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[9]*2 {
		t.Errorf("zipf not skewed: %v", counts)
	}
}
