package hwgc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"hwgc/internal/core"
)

// This file defines the canonical request/response encoding shared by the
// gcserved HTTP service (internal/server), the gcload load generator and
// cmd/gcsim's -json mode. Because every simulation is deterministic, a
// canonicalized request identifies its result exactly: the same canonical
// bytes always produce the same response bytes, which is what makes the
// server's content-addressed result cache sound.

// CollectRequest describes one collection to run: either a named benchmark
// (Bench) or an inline custom object-graph plan (Plan), at a given scale,
// seed and coprocessor configuration. The zero values of Scale, Seed and
// Config select the library defaults (scale 1, seed 42, a 1-core
// coprocessor with the calibrated memory model).
type CollectRequest struct {
	Bench  string `json:",omitempty"`
	Plan   *Plan  `json:",omitempty"`
	Scale  int    `json:",omitempty"`
	Seed   int64  `json:",omitempty"`
	Config Config
	Verify bool `json:",omitempty"`
}

// Canonicalize validates r and resolves every defaulted field in place, so
// that two requests meaning the same simulation compare (and serialize)
// identically. Exactly one of Bench and Plan must be set. For plan requests
// Scale and Seed are forced to zero — they do not influence the build.
func (r *CollectRequest) Canonicalize() error {
	switch {
	case r.Bench == "" && r.Plan == nil:
		return fmt.Errorf("hwgc: request needs a benchmark name or a plan")
	case r.Bench != "" && r.Plan != nil:
		return fmt.Errorf("hwgc: request has both a benchmark name and a plan")
	case r.Plan != nil:
		if err := r.Plan.Validate(); err != nil {
			return err
		}
		r.Scale, r.Seed = 0, 0
	default:
		if _, err := Workload(r.Bench); err != nil {
			return err
		}
		if r.Scale < 1 {
			r.Scale = 1
		}
		if r.Seed == 0 {
			r.Seed = core.DefaultSeed
		}
	}
	r.Config = r.Config.WithDefaults()
	return r.Config.Validate()
}

// CanonicalJSON returns the canonical byte encoding of r, canonicalizing it
// in place first. The encoding is deterministic: field order is fixed and
// all defaults are resolved.
func (r *CollectRequest) CanonicalJSON() ([]byte, error) {
	if err := r.Canonicalize(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// KeyBytes returns the content address of a canonical request encoding:
// the hex SHA-256 of the bytes. It is the one key derivation shared by the
// server's result cache and the fleet's consistent-hash router, so both
// tiers agree on which backend owns which cached result.
func KeyBytes(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// Key returns the content address of r: the hex SHA-256 of its canonical
// JSON encoding. Requests that mean the same simulation share a key.
func (r *CollectRequest) Key() (string, error) {
	b, err := r.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return KeyBytes(b), nil
}

// Run canonicalizes r and executes the simulation it describes.
func (r *CollectRequest) Run() (RunResult, error) {
	if err := r.Canonicalize(); err != nil {
		return RunResult{}, err
	}
	if r.Plan != nil {
		return RunPlan("plan", r.Plan, r.Config, r.Verify)
	}
	return RunBenchmark(r.Bench, r.Scale, r.Seed, r.Config, r.Verify)
}

// SweepRequest describes a core-count sweep of one named benchmark (the
// measurement behind the paper's Figures 5/6 and Table I). An empty Cores
// list selects PaperCoreCounts.
type SweepRequest struct {
	Bench  string
	Cores  []int `json:",omitempty"`
	Scale  int   `json:",omitempty"`
	Seed   int64 `json:",omitempty"`
	Config Config
	Verify bool `json:",omitempty"`
}

// MaxSweepPoints bounds the number of core counts one sweep may request.
const MaxSweepPoints = 64

// Canonicalize validates r and resolves defaulted fields in place.
func (r *SweepRequest) Canonicalize() error {
	if r.Bench == "" {
		return fmt.Errorf("hwgc: sweep request needs a benchmark name")
	}
	if _, err := Workload(r.Bench); err != nil {
		return err
	}
	if len(r.Cores) == 0 {
		r.Cores = append([]int(nil), PaperCoreCounts...)
	}
	if len(r.Cores) > MaxSweepPoints {
		return fmt.Errorf("hwgc: sweep requests %d core counts, max %d", len(r.Cores), MaxSweepPoints)
	}
	if r.Scale < 1 {
		r.Scale = 1
	}
	if r.Seed == 0 {
		r.Seed = core.DefaultSeed
	}
	r.Config = r.Config.WithDefaults()
	if err := r.Config.Validate(); err != nil {
		return err
	}
	for _, n := range r.Cores {
		c := r.Config
		c.Cores = n
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CanonicalJSON returns the canonical byte encoding of r, canonicalizing it
// in place first.
func (r *SweepRequest) CanonicalJSON() ([]byte, error) {
	if err := r.Canonicalize(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// Key returns the content address of r (hex SHA-256 of the canonical JSON).
func (r *SweepRequest) Key() (string, error) {
	b, err := r.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return KeyBytes(b), nil
}

// Run canonicalizes r and executes the sweep it describes.
func (r *SweepRequest) Run() ([]RunResult, error) {
	if err := r.Canonicalize(); err != nil {
		return nil, err
	}
	return SweepCores(r.Bench, r.Cores, r.Scale, r.Seed, r.Config, r.Verify)
}

// CollectResponse is the result encoding for one collection, produced
// identically by the gcserved service (POST /v1/collect) and by
// cmd/gcsim -json, so scripts and the service speak one format. Key is the
// canonical request hash (the server's cache key); Bench, Scale and Seed
// echo the canonicalized request (Bench is "plan" for plan requests; Scale
// and Seed are omitted for them).
type CollectResponse struct {
	Key    string
	Bench  string
	Scale  int   `json:",omitempty"`
	Seed   int64 `json:",omitempty"`
	Result RunResult
}

// NewCollectResponse runs the (possibly non-canonical) request and wraps
// the result in the shared response encoding.
func NewCollectResponse(req CollectRequest) (*CollectResponse, error) {
	key, err := req.Key() // canonicalizes req in place
	if err != nil {
		return nil, err
	}
	res, err := req.Run()
	if err != nil {
		return nil, err
	}
	bench := req.Bench
	if req.Plan != nil {
		bench = "plan"
	}
	return &CollectResponse{Key: key, Bench: bench, Scale: req.Scale, Seed: req.Seed, Result: res}, nil
}

// Encode writes the response in the service's wire format: indented JSON
// with a trailing newline. The output is deterministic byte for byte.
func (r *CollectResponse) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SweepResponse is the result encoding for one core sweep (POST /v1/sweep).
type SweepResponse struct {
	Key     string
	Bench   string
	Cores   []int
	Scale   int
	Seed    int64
	Results []RunResult
}

// NewSweepResponse runs the (possibly non-canonical) sweep request and
// wraps the results in the shared response encoding.
func NewSweepResponse(req SweepRequest) (*SweepResponse, error) {
	key, err := req.Key() // canonicalizes req in place
	if err != nil {
		return nil, err
	}
	results, err := req.Run()
	if err != nil {
		return nil, err
	}
	return &SweepResponse{Key: key, Bench: req.Bench, Cores: req.Cores, Scale: req.Scale, Seed: req.Seed, Results: results}, nil
}

// Encode writes the response in the service's wire format (indented JSON,
// trailing newline, deterministic byte for byte).
func (r *SweepResponse) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
