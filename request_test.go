package hwgc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectRequestCanonicalize(t *testing.T) {
	r := CollectRequest{Bench: "jlisp"}
	if err := r.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if r.Scale != 1 || r.Seed != 42 || r.Config.Cores != 1 || r.Config.FIFOCapacity == 0 {
		t.Fatalf("defaults not resolved: %+v", r)
	}

	// Equivalent spellings share one canonical encoding and key.
	a := CollectRequest{Bench: "jlisp"}
	b := CollectRequest{Bench: "jlisp", Scale: 1, Seed: 42}
	ja, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("equivalent requests encode differently:\n%s\n%s", ja, jb)
	}
	ka, _ := a.Key()
	kb, _ := b.Key()
	if ka == "" || ka != kb {
		t.Fatalf("equivalent requests key differently: %s vs %s", ka, kb)
	}

	// Different simulations key differently.
	c := CollectRequest{Bench: "jlisp", Seed: 7}
	kc, _ := c.Key()
	if kc == ka {
		t.Fatal("different seeds share a key")
	}
}

func TestCollectRequestRejections(t *testing.T) {
	plan := &Plan{}
	plan.NewObj(0, 1)
	plan.AddRoot(0)
	cases := map[string]CollectRequest{
		"nothing":       {},
		"both":          {Bench: "jlisp", Plan: plan},
		"unknown bench": {Bench: "doom"},
		"bad config":    {Bench: "jlisp", Config: Config{Cores: 9999}},
	}
	for name, r := range cases {
		if err := r.Canonicalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPlanRequestCanonicalization(t *testing.T) {
	plan := &Plan{}
	i := plan.NewObj(1, 1)
	j := plan.NewObj(0, 2)
	plan.Link(i, 0, j)
	plan.AddRoot(i)

	r := CollectRequest{Plan: plan, Scale: 9, Seed: 9, Verify: true}
	if err := r.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	// Scale and seed do not influence a plan build; they are zeroed so
	// equivalent plan requests share a key.
	if r.Scale != 0 || r.Seed != 0 {
		t.Fatalf("plan request kept scale/seed: %+v", r)
	}

	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "plan" || res.LiveObjects != 2 || res.Stats.Cycles <= 0 {
		t.Fatalf("plan run result wrong: %+v", res)
	}
}

func TestSweepRequestDefaultsAndRun(t *testing.T) {
	r := SweepRequest{Bench: "jlisp", Cores: []int{1, 2}}
	results, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}

	d := SweepRequest{Bench: "jlisp"}
	if err := d.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if len(d.Cores) != len(PaperCoreCounts) {
		t.Fatalf("default cores %v", d.Cores)
	}
	bad := SweepRequest{Bench: "jlisp", Cores: []int{0}}
	if err := bad.Canonicalize(); err == nil {
		t.Error("core count 0 accepted")
	}
	none := SweepRequest{}
	if err := none.Canonicalize(); err == nil {
		t.Error("sweep without bench accepted")
	}
}

func TestCollectResponseEncodingDeterministic(t *testing.T) {
	mk := func() string {
		resp, err := NewCollectResponse(CollectRequest{Bench: "jlisp", Config: Config{Cores: 2}})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := resp.Encode(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	one, two := mk(), mk()
	if one != two {
		t.Fatal("re-running the same canonical request changed the encoded response")
	}
	if !strings.HasSuffix(one, "\n") || !strings.Contains(one, `"Cycles"`) {
		t.Fatalf("unexpected wire shape:\n%s", one[:120])
	}
}

// The response wire format is backward compatible across the concurrent-
// collection extension: responses written before Stats.Mutator and
// Config.BarrierMode existed still decode (the new fields stay at their
// zero values), and a concurrent response round-trips with the mutator
// block intact.
func TestCollectResponseCodecCompat(t *testing.T) {
	// A pre-extension response body: no Mutator block, no BarrierMode.
	old := `{
  "Key": "abc",
  "Bench": "jlisp",
  "Result": {
    "Benchmark": "jlisp",
    "Stats": {
      "Cycles": 123,
      "Config": {"Cores": 2}
    },
    "PlanObjects": 1,
    "PlanWords": 8,
    "LiveObjects": 1,
    "LiveWords": 8
  }
}`
	var decoded CollectResponse
	if err := json.Unmarshal([]byte(old), &decoded); err != nil {
		t.Fatalf("pre-extension response failed to decode: %v", err)
	}
	if decoded.Result.Stats.Mutator != nil {
		t.Fatal("pre-extension response decoded with a mutator block")
	}
	if decoded.Result.Stats.Config.BarrierMode != BarrierNone {
		t.Fatalf("pre-extension response decoded with BarrierMode %q", decoded.Result.Stats.Config.BarrierMode)
	}

	// A stop-the-world response must not grow the new fields on the wire.
	stw, err := NewCollectResponse(CollectRequest{Bench: "jlisp", Config: Config{Cores: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := stw.Encode(&b); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Mutator", "BarrierMode", "MutatorOps"} {
		if strings.Contains(b.String(), field) {
			t.Errorf("stop-the-world response encodes %q:\n%s", field, b.String())
		}
	}

	// A concurrent response round-trips with the mutator block intact.
	conc, err := NewCollectResponse(CollectRequest{Bench: "jlisp",
		Config: Config{Cores: 2, MutatorOps: 1 << 40, BarrierMode: BarrierSATB}})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := conc.Encode(&b); err != nil {
		t.Fatal(err)
	}
	var back CollectResponse
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Result.Stats.Mutator == nil {
		t.Fatal("concurrent response lost its mutator block on the wire")
	}
	if diffs := back.Result.Stats.DiffFields(&conc.Result.Stats); diffs != nil {
		t.Fatalf("concurrent response stats changed across the wire: %v", diffs)
	}
	if back.Result.Stats.Mutator.BarrierInvocations == 0 {
		t.Fatal("concurrent response carries zero barrier invocations")
	}
}
