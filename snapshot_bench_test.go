package hwgc

import (
	"fmt"
	"testing"
)

// BenchmarkSnapshotRoundTrip measures one full checkpoint round trip —
// capture + encode to bytes, then decode + rebuild a runnable machine —
// taken mid-collection, where the scan frontier, lock registers and
// in-flight memory transactions are all live. snapshot-bytes reports the
// serialized size.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	h, err := BuildWorkload("search", 1, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	col, err := StartCollection(h, Config{Cores: 8})
	if err != nil {
		b.Fatal(err)
	}
	if done, err := col.StepCycles(1000); err != nil || done {
		b.Fatalf("stepping to checkpoint: done=%v err=%v", done, err)
	}
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := col.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		size = len(snap)
		if _, err := ResumeCollection(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "snapshot-bytes")
}

// BenchmarkCheckpointedCollect measures the overhead of checkpoint-every-N
// execution against a plain run of the same collection. gc-clock-cycles
// must be identical across all variants — checkpointing is observation,
// not perturbation — so the benchmark gate's exact-match rule holds the
// determinism contract, while ns/op shows the wall-clock cost of the
// snapshots.
func BenchmarkCheckpointedCollect(b *testing.B) {
	run := func(b *testing.B, every int64) {
		b.Helper()
		var st Stats
		var checkpoints int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			h, err := BuildWorkload("search", 1, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if every == 0 {
				if st, err = Collect(h, Config{Cores: 8}); err != nil {
					b.Fatal(err)
				}
				continue
			}
			col, err := StartCollection(h, Config{Cores: 8})
			if err != nil {
				b.Fatal(err)
			}
			checkpoints = 0
			for {
				done, err := col.StepCycles(every)
				if err != nil {
					b.Fatal(err)
				}
				if done {
					break
				}
				if _, err := col.Snapshot(); err != nil {
					b.Fatal(err)
				}
				checkpoints++
			}
			if st, err = col.Finish(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Cycles), "gc-clock-cycles")
		if every > 0 {
			b.ReportMetric(float64(checkpoints), "checkpoints")
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, 0) })
	for _, every := range []int64{50000, 5000} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) { run(b, every) })
	}
}
