package hwgc

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// These tests assert the checkpoint/restore contract over the same matrix
// as the fast-forward determinism suite: a run restored from a snapshot
// taken at ANY cycle finishes with Stats and heap image bit-identical to
// the uninterrupted run.

// runUninterrupted collects a fresh workload heap end to end.
func runUninterrupted(t *testing.T, bench string, cfg Config) (Stats, *Heap) {
	t.Helper()
	h, err := BuildWorkload(bench, 1, 42)
	if err != nil {
		t.Fatalf("BuildWorkload(%s): %v", bench, err)
	}
	st, err := Collect(h, cfg)
	if err != nil {
		t.Fatalf("Collect(%s): %v", bench, err)
	}
	return st, h
}

// checkRestoredRun suspends a fresh run at checkpointCycle, round-trips it
// through snapshot bytes, and checks the resumed outcome against the
// uninterrupted reference.
func checkRestoredRun(t *testing.T, bench string, cfg Config, checkpointCycle int64, want Stats, wantHeap *Heap) {
	t.Helper()
	h, err := BuildWorkload(bench, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	col, err := StartCollection(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done, err := col.StepCycles(checkpointCycle)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatalf("collection finished before checkpoint cycle %d", checkpointCycle)
	}
	snap, err := col.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ResumeCollection(snap)
	if err != nil {
		t.Fatalf("restore at cycle %d: %v", checkpointCycle, err)
	}
	got, err := restored.Finish()
	if err != nil {
		t.Fatalf("resume from cycle %d: %v", checkpointCycle, err)
	}
	if diffs := want.DiffFields(&got); len(diffs) > 0 {
		t.Errorf("restored from cycle %d: stats differ: %v", checkpointCycle, diffs)
	}
	gh := restored.Heap()
	if !reflect.DeepEqual(wantHeap.Mem(), gh.Mem()) {
		t.Errorf("restored from cycle %d: heap images differ", checkpointCycle)
	}
	if !reflect.DeepEqual(wantHeap.Roots(), gh.Roots()) {
		t.Errorf("restored from cycle %d: root sets differ", checkpointCycle)
	}
	if wantHeap.AllocPtr() != gh.AllocPtr() {
		t.Errorf("restored from cycle %d: alloc pointer %d != %d", checkpointCycle, gh.AllocPtr(), wantHeap.AllocPtr())
	}
}

// checkpointCycles picks deterministic pseudo-random checkpoint cycles
// strictly inside the collection's cycle loop.
func checkpointCycles(rng *rand.Rand, loopCycles int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, 1+rng.Int63n(loopCycles-1))
	}
	return out
}

// TestSnapshotRestoreMatrix sweeps every workload over the paper's core
// counts with random checkpoint cycles.
func TestSnapshotRestoreMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, bench := range Workloads() {
		for _, cores := range PaperCoreCounts {
			bench, cores := bench, cores
			seed := rng.Int63()
			t.Run(fmt.Sprintf("%s/cores=%d", bench, cores), func(t *testing.T) {
				t.Parallel()
				if testing.Short() && cores != 1 && cores != 16 {
					t.Skip("short mode: endpoints only")
				}
				cfg := Config{Cores: cores}
				want, wantHeap := runUninterrupted(t, bench, cfg)
				loop := want.Cycles - cfg.WithDefaults().ShutdownCycles
				rng := rand.New(rand.NewSource(seed))
				n := 3
				if testing.Short() {
					n = 1
				}
				for _, at := range checkpointCycles(rng, loop, n) {
					checkRestoredRun(t, bench, cfg, at, want, wantHeap)
				}
			})
		}
	}
}

// TestSnapshotRestoreConfigVariants exercises the config variants whose
// extra machinery lives in the snapshot (stride table, header cache, bank
// timers, FIFO edge sizes, long latency windows).
func TestSnapshotRestoreConfigVariants(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"extra-latency", Config{ExtraMemLatency: 20}},
		{"stride", Config{StrideWords: 8}},
		{"header-cache", Config{HeaderCacheLines: 16}},
		{"tiny-fifo", Config{FIFOCapacity: 2}},
		{"no-fifo", Config{DisableFIFO: true}},
		{"banks", Config{MemBanks: 4}},
	}
	rng := rand.New(rand.NewSource(7))
	for _, v := range variants {
		for _, cores := range []int{1, 4, 16} {
			v, cores := v, cores
			seed := rng.Int63()
			t.Run(fmt.Sprintf("%s/cores=%d", v.name, cores), func(t *testing.T) {
				t.Parallel()
				cfg := v.cfg
				cfg.Cores = cores
				want, wantHeap := runUninterrupted(t, "javacc", cfg)
				loop := want.Cycles - cfg.WithDefaults().ShutdownCycles
				rng := rand.New(rand.NewSource(seed))
				for _, at := range checkpointCycles(rng, loop, 2) {
					checkRestoredRun(t, "javacc", cfg, at, want, wantHeap)
				}
			})
		}
	}
}

// TestSnapshotRestoreBarrierModes extends the restore matrix to the
// concurrent-collection extension: a run with the churn mutator attached
// carries extra machine state in the snapshot (mutator PRNG, op cursor,
// barrier counters, SATB shade log attribution), all of which must survive
// a checkpoint taken at an arbitrary cycle.
func TestSnapshotRestoreBarrierModes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mode := range []BarrierMode{BarrierNone, BarrierSATB, BarrierIncUpdate} {
		for _, cores := range []int{1, 4, 16} {
			mode, cores := mode, cores
			seed := rng.Int63()
			name := string(mode)
			if name == "" {
				name = "none"
			}
			t.Run(fmt.Sprintf("%s/cores=%d", name, cores), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Cores: cores, MutatorOps: 1 << 40, BarrierMode: mode}
				want, wantHeap := runUninterrupted(t, "jlisp", cfg)
				if want.Mutator == nil {
					t.Fatal("concurrent run reported no mutator stats")
				}
				loop := want.Cycles - cfg.WithDefaults().ShutdownCycles
				rng := rand.New(rand.NewSource(seed))
				for _, at := range checkpointCycles(rng, loop, 2) {
					checkRestoredRun(t, "jlisp", cfg, at, want, wantHeap)
				}
			})
		}
	}
}

// TestSnapshotRestoreMemoryHierarchy extends the restore matrix to the NUMA
// and cache extensions: hierarchy runs carry extra machine state in the
// snapshot (per-load completion classes, the remote/L1/L2 completion rings,
// cache tag arrays with LRU timestamps, in-flight MSHR occupancy), all of
// which must survive a checkpoint taken at an arbitrary cycle. The cases
// deliberately cross the models — NUMA alone, cache alone, both together,
// and locality-aware placement — and add a counter sanity check so a
// variant that silently ran flat cannot pass.
func TestSnapshotRestoreMemoryHierarchy(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"numa", Config{NUMADomains: 4, NUMARemotePenalty: 30}},
		{"numa-local", Config{NUMADomains: 4, NUMAPlacement: PlacementLocal}},
		{"cache", Config{L1Sets: 16}},
		{"cache-mshr", Config{L1Sets: 8, L1Ways: 1, MSHRs: 2}},
		{"numa-cache", Config{NUMADomains: 2, NUMABandwidth: 2, L1Sets: 16}},
	}
	rng := rand.New(rand.NewSource(13))
	for _, v := range variants {
		for _, cores := range []int{1, 4, 16} {
			v, cores := v, cores
			seed := rng.Int63()
			t.Run(fmt.Sprintf("%s/cores=%d", v.name, cores), func(t *testing.T) {
				t.Parallel()
				cfg := v.cfg
				cfg.Cores = cores
				want, wantHeap := runUninterrupted(t, "javacc", cfg)
				if cfg.NUMADomains > 0 && want.Mem.LocalAccesses+want.Mem.RemoteAccesses == 0 {
					t.Fatal("NUMA run classified no accesses")
				}
				if cfg.L1Sets > 0 && want.Mem.L1Hits+want.Mem.L1Misses == 0 {
					t.Fatal("cache run recorded no L1 lookups")
				}
				loop := want.Cycles - cfg.WithDefaults().ShutdownCycles
				rng := rand.New(rand.NewSource(seed))
				for _, at := range checkpointCycles(rng, loop, 2) {
					checkRestoredRun(t, "javacc", cfg, at, want, wantHeap)
				}
			})
		}
	}
}

// TestRequestCollectionResponseBytes is the serving-tier contract: a
// request collection that is checkpointed, serialized, and resumed from the
// snapshot in a "different process" must produce a response byte-identical
// to the uninterrupted NewCollectResponse encoding.
func TestRequestCollectionResponseBytes(t *testing.T) {
	for _, verify := range []bool{false, true} {
		t.Run(fmt.Sprintf("verify=%v", verify), func(t *testing.T) {
			req := CollectRequest{Bench: "search", Config: Config{Cores: 4}, Verify: verify}
			want, err := NewCollectResponse(req)
			if err != nil {
				t.Fatal(err)
			}
			var wantBuf bytes.Buffer
			if err := want.Encode(&wantBuf); err != nil {
				t.Fatal(err)
			}

			rc, err := StartCollectRequest(CollectRequest{Bench: "search", Config: Config{Cores: 4}, Verify: verify})
			if err != nil {
				t.Fatal(err)
			}
			done, err := rc.StepCycles(300)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				t.Fatal("collection finished before the checkpoint")
			}
			snap, err := rc.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Drop rc: the resumed side starts from the snapshot alone.
			resumed, err := ResumeCollectRequest(CollectRequest{Bench: "search", Config: Config{Cores: 4}, Verify: verify}, snap)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Key() != want.Key {
				t.Fatalf("key mismatch: %s != %s", resumed.Key(), want.Key)
			}
			resp, err := resumed.Response()
			if err != nil {
				t.Fatal(err)
			}
			var gotBuf bytes.Buffer
			if err := resp.Encode(&gotBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
				t.Fatalf("response bytes differ:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", wantBuf.String(), gotBuf.String())
			}
		})
	}
}

// TestResumeCollectRequestRejectsMismatch checks the config cross-check: a
// snapshot taken under one configuration must not resume under another.
func TestResumeCollectRequestRejectsMismatch(t *testing.T) {
	rc, err := StartCollectRequest(CollectRequest{Bench: "jlisp", Config: Config{Cores: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.StepCycles(100); err != nil {
		t.Fatal(err)
	}
	snap, err := rc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCollectRequest(CollectRequest{Bench: "jlisp", Config: Config{Cores: 4}}, snap); err == nil {
		t.Fatal("resume with a different core count should fail")
	}
	if _, err := ResumeCollectRequest(CollectRequest{Bench: "jlisp", Config: Config{Cores: 2}}, snap[:len(snap)/2]); err == nil {
		t.Fatal("resume from truncated snapshot should fail")
	}
}
