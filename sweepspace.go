package hwgc

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hwgc/internal/core"
	"hwgc/internal/plan"
)

// This file defines SweepSpace, the versioned parameter-space specification
// behind the gcsweep exploration engine (POST /v1/sweeps). A space is a
// cross product of axes — benchmarks, scales, seeds and any integer Config
// field — filtered by optional constraints and bounded by a point cap. Like
// CollectRequest, a space canonicalizes to deterministic bytes, so two
// spellings of the same design question share one content key (the sweep
// ID), and its expansion order is fixed, so every planner derives the same
// point list in the same order.

// SweepSpaceVersion is the current (and only) SweepSpace spec version.
const SweepSpaceVersion = 1

// MaxSweepSpacePoints bounds how many points one space may plan after
// constraint filtering. It is also the default MaxPoints.
const MaxSweepSpacePoints = 4096

// maxSweepSpaceProduct bounds the raw cross product before constraint
// filtering, so a hostile spec cannot make canonicalization itself
// expensive: expansion iterates the product even when constraints would
// filter almost everything out.
const maxSweepSpaceProduct = 1 << 20

// MaxSweepFrontier bounds (and defaults, at 16) the ranked-frontier size a
// space may request.
const MaxSweepFrontier = 64

// Frontier objectives. All are computed per completed point from its
// RunResult; the speedup objectives additionally group points that differ
// only in Cores and use the group's smallest completed core count as the
// baseline (which is an exact T(1) baseline whenever the space includes a
// single-core point).
const (
	// ObjectiveSpeedupPerCore ranks by speedup over the group baseline
	// divided by the core ratio — the paper's efficiency question "how much
	// of the added silicon turns into collection speed".
	ObjectiveSpeedupPerCore = "speedup-per-core"
	// ObjectiveSpeedup ranks by raw speedup over the group baseline
	// (Figure 5's y-axis).
	ObjectiveSpeedup = "speedup"
	// ObjectiveMinCycles ranks by fewest collection clock cycles.
	ObjectiveMinCycles = "min-cycles"
	// ObjectiveWordsPerCycle ranks by live words evacuated per clock cycle
	// (throughput, normalized by heap size so mixed-benchmark spaces rank
	// sensibly).
	ObjectiveWordsPerCycle = "words-per-cycle"
)

// SweepObjectives lists every valid Objective value.
var SweepObjectives = []string{
	ObjectiveSpeedupPerCore, ObjectiveSpeedup, ObjectiveMinCycles, ObjectiveWordsPerCycle,
}

// SweepAxis varies one Config field over an explicit value list. Integer
// fields list their values in Values (canonicalized sorted ascending,
// duplicates removed; a zero value selects the field's library default
// exactly as it does on a single CollectRequest). Enum-valued string fields
// (BarrierMode, NUMAPlacement) list theirs in Strings (canonicalized sorted,
// deduplicated, with "" spelled by the zero value's canonical name — "none"
// for BarrierMode, "naive" for NUMAPlacement); exactly one of the two lists
// must be set.
type SweepAxis struct {
	Field   string
	Values  []int64  `json:",omitempty"`
	Strings []string `json:",omitempty"`
}

// SweepConstraint filters the cross product: a point survives when its
// canonicalized Config satisfies "A Op B" (field against field) or
// "A Op Value" (field against a literal). Exactly one of B and Value must
// be set.
type SweepConstraint struct {
	A     string
	Op    string // one of < <= == != >= >
	B     string `json:",omitempty"`
	Value *int64 `json:",omitempty"`
}

// SweepSpace is the versioned sweep specification. Benches is required;
// empty Scales and Seeds default to {1} and {DefaultSeed}. Base is the
// configuration every point starts from before its axis values are applied.
type SweepSpace struct {
	V           int
	Benches     []string
	Scales      []int   `json:",omitempty"`
	Seeds       []int64 `json:",omitempty"`
	Base        Config
	Axes        []SweepAxis       `json:",omitempty"`
	Constraints []SweepConstraint `json:",omitempty"`
	// MaxPoints caps the planned (post-constraint) point count; 0 selects
	// MaxSweepSpacePoints, which is also the hard upper bound.
	MaxPoints int `json:",omitempty"`
	// Objective names the frontier ranking; empty selects speedup-per-core.
	Objective string
	// TopK is the ranked-frontier size; 0 selects 16, MaxSweepFrontier is
	// the bound.
	TopK   int
	Verify bool `json:",omitempty"`
}

// SweepPoint is one planned point of an expanded space: a canonical
// CollectRequest plus its content key (which is also its job ID and cache
// key, fleet-wide).
type SweepPoint struct {
	Index     int
	Key       string
	Canonical []byte
	Req       CollectRequest
}

// axisField binds a sweepable Config field name to its accessor pair.
type axisField struct {
	name string
	get  func(*Config) int64
	set  func(*Config, int64)
}

// sweepAxisFields lists every sweepable Config field in canonical order.
// Boolean fields (DisableFIFO, OptUnlockedMarkRead, Verify) belong in Base,
// not on an axis: a two-valued bool axis is just two spaces.
var sweepAxisFields = []axisField{
	{"CacheLineWords", func(c *Config) int64 { return int64(c.CacheLineWords) }, func(c *Config, v int64) { c.CacheLineWords = int(v) }},
	{"Cores", func(c *Config) int64 { return int64(c.Cores) }, func(c *Config, v int64) { c.Cores = int(v) }},
	{"ExtraMemLatency", func(c *Config) int64 { return int64(c.ExtraMemLatency) }, func(c *Config, v int64) { c.ExtraMemLatency = int(v) }},
	{"FIFOCapacity", func(c *Config) int64 { return int64(c.FIFOCapacity) }, func(c *Config, v int64) { c.FIFOCapacity = int(v) }},
	{"HeaderCacheLines", func(c *Config) int64 { return int64(c.HeaderCacheLines) }, func(c *Config, v int64) { c.HeaderCacheLines = int(v) }},
	{"L1Sets", func(c *Config) int64 { return int64(c.L1Sets) }, func(c *Config, v int64) { c.L1Sets = int(v) }},
	{"L1Ways", func(c *Config) int64 { return int64(c.L1Ways) }, func(c *Config, v int64) { c.L1Ways = int(v) }},
	{"L2Sets", func(c *Config) int64 { return int64(c.L2Sets) }, func(c *Config, v int64) { c.L2Sets = int(v) }},
	{"L2Ways", func(c *Config) int64 { return int64(c.L2Ways) }, func(c *Config, v int64) { c.L2Ways = int(v) }},
	{"MSHRs", func(c *Config) int64 { return int64(c.MSHRs) }, func(c *Config, v int64) { c.MSHRs = int(v) }},
	{"MemBandwidth", func(c *Config) int64 { return int64(c.MemBandwidth) }, func(c *Config, v int64) { c.MemBandwidth = int(v) }},
	{"MemBankBusy", func(c *Config) int64 { return int64(c.MemBankBusy) }, func(c *Config, v int64) { c.MemBankBusy = int(v) }},
	{"MemBanks", func(c *Config) int64 { return int64(c.MemBanks) }, func(c *Config, v int64) { c.MemBanks = int(v) }},
	{"MemLatency", func(c *Config) int64 { return int64(c.MemLatency) }, func(c *Config, v int64) { c.MemLatency = int(v) }},
	{"MemStoreQueueDepth", func(c *Config) int64 { return int64(c.MemStoreQueueDepth) }, func(c *Config, v int64) { c.MemStoreQueueDepth = int(v) }},
	{"MutatorAllocs", func(c *Config) int64 { return c.MutatorAllocs }, func(c *Config, v int64) { c.MutatorAllocs = v }},
	{"MutatorOps", func(c *Config) int64 { return c.MutatorOps }, func(c *Config, v int64) { c.MutatorOps = v }},
	{"MutatorPeriod", func(c *Config) int64 { return int64(c.MutatorPeriod) }, func(c *Config, v int64) { c.MutatorPeriod = int(v) }},
	{"MutatorSeed", func(c *Config) int64 { return c.MutatorSeed }, func(c *Config, v int64) { c.MutatorSeed = v }},
	{"NUMABandwidth", func(c *Config) int64 { return int64(c.NUMABandwidth) }, func(c *Config, v int64) { c.NUMABandwidth = int(v) }},
	{"NUMADomains", func(c *Config) int64 { return int64(c.NUMADomains) }, func(c *Config, v int64) { c.NUMADomains = int(v) }},
	{"NUMAInterleave", func(c *Config) int64 { return int64(c.NUMAInterleave) }, func(c *Config, v int64) { c.NUMAInterleave = int(v) }},
	{"NUMARemotePenalty", func(c *Config) int64 { return int64(c.NUMARemotePenalty) }, func(c *Config, v int64) { c.NUMARemotePenalty = int(v) }},
	{"ShutdownCycles", func(c *Config) int64 { return c.ShutdownCycles }, func(c *Config, v int64) { c.ShutdownCycles = v }},
	{"StartupCycles", func(c *Config) int64 { return c.StartupCycles }, func(c *Config, v int64) { c.StartupCycles = v }},
	{"StrideWords", func(c *Config) int64 { return int64(c.StrideWords) }, func(c *Config, v int64) { c.StrideWords = int(v) }},
}

func axisFieldByName(name string) (axisField, bool) {
	for _, f := range sweepAxisFields {
		if f.name == name {
			return f, true
		}
	}
	return axisField{}, false
}

// enumAxisField binds an enum-valued (string) Config field to its accessor
// pair and the canonical spellings of its values. The getter and setter
// translate the empty in-struct value to/from its canonical spelling (empty)
// so the axis value list never contains "".
type enumAxisField struct {
	name   string
	get    func(*Config) string
	set    func(*Config, string)
	values []string // canonical spellings, sorted
	empty  string   // canonical spelling of the zero value
}

// sweepEnumAxisFields lists every sweepable enum-valued Config field in
// canonical order.
var sweepEnumAxisFields = []enumAxisField{
	{
		name: "BarrierMode",
		get: func(c *Config) string {
			if c.BarrierMode == BarrierNone {
				return "none"
			}
			return string(c.BarrierMode)
		},
		set: func(c *Config, v string) {
			if v == "none" {
				c.BarrierMode = BarrierNone
				return
			}
			c.BarrierMode = BarrierMode(v)
		},
		values: []string{"incupdate", "none", "satb"},
		empty:  "none",
	},
	{
		name: "NUMAPlacement",
		get: func(c *Config) string {
			if c.NUMAPlacement == PlacementNaive {
				return "naive"
			}
			return string(c.NUMAPlacement)
		},
		set: func(c *Config, v string) {
			if v == "naive" {
				c.NUMAPlacement = PlacementNaive
				return
			}
			c.NUMAPlacement = NUMAPlacement(v)
		},
		values: []string{"local", "naive"},
		empty:  "naive",
	},
}

func enumAxisFieldByName(name string) (enumAxisField, bool) {
	for _, f := range sweepEnumAxisFields {
		if f.name == name {
			return f, true
		}
	}
	return enumAxisField{}, false
}

// SweepAxisFields lists the integer Config fields a SweepAxis or
// SweepConstraint may name, in canonical order.
func SweepAxisFields() []string {
	out := make([]string, len(sweepAxisFields))
	for i, f := range sweepAxisFields {
		out[i] = f.name
	}
	return out
}

// SweepEnumAxisFields lists the enum-valued Config fields a SweepAxis may
// name (constraints stay integer-only), in canonical order.
func SweepEnumAxisFields() []string {
	out := make([]string, len(sweepEnumAxisFields))
	for i, f := range sweepEnumAxisFields {
		out[i] = f.name
	}
	return out
}

var sweepConstraintOps = map[string]func(a, b int64) bool{
	"<":  func(a, b int64) bool { return a < b },
	"<=": func(a, b int64) bool { return a <= b },
	"==": func(a, b int64) bool { return a == b },
	"!=": func(a, b int64) bool { return a != b },
	">=": func(a, b int64) bool { return a >= b },
	">":  func(a, b int64) bool { return a > b },
}

// Canonicalize validates s and resolves every defaulted field in place:
// axis and scalar lists are sorted and deduplicated, constraints are
// ordered canonically, Base gets its defaults, and the point cap is
// enforced against the actual post-constraint point count. Two spaces that
// mean the same exploration serialize identically afterwards.
func (s *SweepSpace) Canonicalize() error {
	switch s.V {
	case 0:
		s.V = SweepSpaceVersion
	case SweepSpaceVersion:
	default:
		return fmt.Errorf("hwgc: unsupported SweepSpace version %d (want %d)", s.V, SweepSpaceVersion)
	}
	if len(s.Benches) == 0 {
		return fmt.Errorf("hwgc: sweep space needs at least one benchmark")
	}
	for _, b := range s.Benches {
		if _, err := Workload(b); err != nil {
			return err
		}
	}
	s.Benches = dedupeStrings(s.Benches)
	if len(s.Scales) == 0 {
		s.Scales = []int{1}
	}
	for _, sc := range s.Scales {
		if sc < 1 {
			return fmt.Errorf("hwgc: sweep space scale %d: must be >= 1", sc)
		}
	}
	s.Scales = dedupeInts(s.Scales)
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{core.DefaultSeed}
	}
	for i, sd := range s.Seeds {
		if sd == 0 {
			s.Seeds[i] = core.DefaultSeed
		}
	}
	s.Seeds = dedupeInt64s(s.Seeds)
	s.Base = s.Base.WithDefaults()
	if err := s.Base.Validate(); err != nil {
		return err
	}
	seenAxis := map[string]bool{}
	for i := range s.Axes {
		ax := &s.Axes[i]
		f, intField := axisFieldByName(ax.Field)
		ef, enumField := enumAxisFieldByName(ax.Field)
		if !intField && !enumField {
			return fmt.Errorf("hwgc: sweep axis %q: unknown Config field (valid: %v + %v)",
				ax.Field, SweepAxisFields(), SweepEnumAxisFields())
		}
		if seenAxis[ax.Field] {
			return fmt.Errorf("hwgc: duplicate sweep axis %q", ax.Field)
		}
		seenAxis[ax.Field] = true
		switch {
		case enumField:
			if len(ax.Strings) == 0 {
				return fmt.Errorf("hwgc: sweep axis %q lists no values (enum field, use Strings)", ax.Field)
			}
			if len(ax.Values) != 0 {
				return fmt.Errorf("hwgc: sweep axis %q: enum field takes Strings, not Values", ax.Field)
			}
			// Normalize the empty spelling, then validate each value by
			// single substitution, exactly like the integer path.
			for j, v := range ax.Strings {
				if v == "" {
					ax.Strings[j] = ef.empty
					v = ef.empty
				}
				probe := s.Base
				ef.set(&probe, v)
				probe = probe.WithDefaults()
				if err := probe.Validate(); err != nil {
					return fmt.Errorf("hwgc: sweep axis %q value %q: %w", ax.Field, v, err)
				}
			}
			ax.Strings = dedupeStrings(ax.Strings)
		default:
			if len(ax.Values) == 0 {
				return fmt.Errorf("hwgc: sweep axis %q lists no values", ax.Field)
			}
			if len(ax.Strings) != 0 {
				return fmt.Errorf("hwgc: sweep axis %q: integer field takes Values, not Strings", ax.Field)
			}
			// Every value must yield a valid config when applied alone: Config
			// validation is per-field, so single-substitution checking is exact
			// and catches a bad value before the cross product multiplies it.
			for _, v := range ax.Values {
				probe := s.Base
				f.set(&probe, v)
				probe = probe.WithDefaults()
				if err := probe.Validate(); err != nil {
					return fmt.Errorf("hwgc: sweep axis %q value %d: %w", ax.Field, v, err)
				}
			}
			ax.Values = dedupeInt64s(ax.Values)
		}
	}
	sort.Slice(s.Axes, func(i, j int) bool { return s.Axes[i].Field < s.Axes[j].Field })
	for i := range s.Constraints {
		c := &s.Constraints[i]
		if _, ok := sweepConstraintOps[c.Op]; !ok {
			return fmt.Errorf("hwgc: sweep constraint op %q: want one of < <= == != >= >", c.Op)
		}
		if _, ok := axisFieldByName(c.A); !ok {
			return fmt.Errorf("hwgc: sweep constraint field %q: unknown Config field", c.A)
		}
		if (c.B == "") == (c.Value == nil) {
			return fmt.Errorf("hwgc: sweep constraint on %q: exactly one of B and Value must be set", c.A)
		}
		if c.B != "" {
			if _, ok := axisFieldByName(c.B); !ok {
				return fmt.Errorf("hwgc: sweep constraint field %q: unknown Config field", c.B)
			}
		}
	}
	sort.SliceStable(s.Constraints, func(i, j int) bool { return constraintLess(s.Constraints[i], s.Constraints[j]) })
	s.Constraints = dedupeConstraints(s.Constraints)
	if s.MaxPoints < 0 || s.MaxPoints > MaxSweepSpacePoints {
		return fmt.Errorf("hwgc: sweep space MaxPoints %d: must be in [0,%d]", s.MaxPoints, MaxSweepSpacePoints)
	}
	if s.MaxPoints == 0 {
		s.MaxPoints = MaxSweepSpacePoints
	}
	if s.Objective == "" {
		s.Objective = ObjectiveSpeedupPerCore
	}
	if !validObjective(s.Objective) {
		return fmt.Errorf("hwgc: sweep objective %q: want one of %v", s.Objective, SweepObjectives)
	}
	if s.TopK < 0 || s.TopK > MaxSweepFrontier {
		return fmt.Errorf("hwgc: sweep space TopK %d: must be in [0,%d]", s.TopK, MaxSweepFrontier)
	}
	if s.TopK == 0 {
		s.TopK = 16
	}
	product := int64(len(s.Benches)) * int64(len(s.Scales)) * int64(len(s.Seeds))
	for _, ax := range s.Axes {
		product *= int64(len(ax.Values) + len(ax.Strings))
		if product > maxSweepSpaceProduct {
			return fmt.Errorf("hwgc: sweep space cross product exceeds %d combinations", maxSweepSpaceProduct)
		}
	}
	if product > maxSweepSpaceProduct {
		return fmt.Errorf("hwgc: sweep space cross product exceeds %d combinations", maxSweepSpaceProduct)
	}
	n, err := s.expand(nil)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("hwgc: sweep space constraints filter out every point")
	}
	if n > s.MaxPoints {
		return fmt.Errorf("hwgc: sweep space plans more than %d points (cap)", s.MaxPoints)
	}
	return nil
}

func validObjective(name string) bool {
	for _, o := range SweepObjectives {
		if o == name {
			return true
		}
	}
	return false
}

func constraintLess(a, b SweepConstraint) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.B != b.B {
		return a.B < b.B
	}
	av, bv := int64(0), int64(0)
	if a.Value != nil {
		av = *a.Value
	}
	if b.Value != nil {
		bv = *b.Value
	}
	return av < bv
}

func dedupeConstraints(cs []SweepConstraint) []SweepConstraint {
	out := cs[:0]
	for i, c := range cs {
		if i > 0 && !constraintLess(cs[i-1], c) && !constraintLess(c, cs[i-1]) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func dedupeStrings(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || in[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func dedupeInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || in[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func dedupeInt64s(in []int64) []int64 {
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	for i, v := range in {
		if i == 0 || in[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// satisfied evaluates every constraint against a canonicalized config.
func (s *SweepSpace) satisfied(cfg *Config) bool {
	for _, c := range s.Constraints {
		fa, _ := axisFieldByName(c.A)
		a := fa.get(cfg)
		var b int64
		if c.B != "" {
			fb, _ := axisFieldByName(c.B)
			b = fb.get(cfg)
		} else {
			b = *c.Value
		}
		if !sweepConstraintOps[c.Op](a, b) {
			return false
		}
	}
	return true
}

// expand iterates the cross product in canonical order — benches, scales,
// seeds, then each axis ascending — applying constraints and deduplicating
// by content key (two axis tuples can canonicalize to the same request when
// a zero axis value resolves to a default another value spells explicitly).
// When visit is nil only the count is computed. Returns the planned count.
func (s *SweepSpace) expand(visit func(SweepPoint) error) (int, error) {
	idx := make([]int, len(s.Axes))
	seen := make(map[string]bool)
	n := 0
	for _, bench := range s.Benches {
		for _, scale := range s.Scales {
			for _, seed := range s.Seeds {
				for i := range idx {
					idx[i] = 0
				}
				for {
					cfg := s.Base
					for i, ax := range s.Axes {
						if len(ax.Strings) > 0 {
							ef, _ := enumAxisFieldByName(ax.Field)
							ef.set(&cfg, ax.Strings[idx[i]])
						} else {
							f, _ := axisFieldByName(ax.Field)
							f.set(&cfg, ax.Values[idx[i]])
						}
					}
					cfg = cfg.WithDefaults()
					if s.satisfied(&cfg) {
						req := CollectRequest{Bench: bench, Scale: scale, Seed: seed, Config: cfg, Verify: s.Verify}
						canonical, err := req.CanonicalJSON()
						if err != nil {
							return 0, err
						}
						key := KeyBytes(canonical)
						if !seen[key] {
							seen[key] = true
							if visit != nil {
								if err := visit(SweepPoint{Index: n, Key: key, Canonical: canonical, Req: req}); err != nil {
									return 0, err
								}
							}
							n++
							// One past the cap already proves the space
							// invalid; bail out so a hostile spec cannot
							// make counting itself expensive.
							if visit == nil && n > s.MaxPoints {
								return n, nil
							}
						}
					}
					// Odometer step over the axis value tuples.
					carry := len(idx) - 1
					for ; carry >= 0; carry-- {
						idx[carry]++
						if idx[carry] < len(s.Axes[carry].Values)+len(s.Axes[carry].Strings) {
							break
						}
						idx[carry] = 0
					}
					if carry < 0 {
						break
					}
				}
			}
		}
	}
	return n, nil
}

// Points canonicalizes s and expands it into its planned points, in
// deterministic order. The point list is identical for every planner that
// holds the same canonical space bytes — the property the fleet relies on
// to aggregate a byte-identical frontier from distributed completions.
func (s *SweepSpace) Points() ([]SweepPoint, error) {
	if err := s.Canonicalize(); err != nil {
		return nil, err
	}
	var pts []SweepPoint
	if _, err := s.expand(func(p SweepPoint) error {
		pts = append(pts, p)
		return nil
	}); err != nil {
		return nil, err
	}
	return pts, nil
}

// PointCount canonicalizes s and returns how many points it plans.
func (s *SweepSpace) PointCount() (int, error) {
	if err := s.Canonicalize(); err != nil {
		return 0, err
	}
	return s.expand(nil)
}

// CanonicalJSON returns the canonical byte encoding of s, canonicalizing it
// in place first.
func (s *SweepSpace) CanonicalJSON() ([]byte, error) {
	if err := s.Canonicalize(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// Key returns the sweep ID: the content address of the canonical space.
func (s *SweepSpace) Key() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return KeyBytes(b), nil
}

// DecodeSweepSpace strictly decodes and canonicalizes a SweepSpace from
// JSON: unknown fields, trailing data and every canonicalization error are
// rejected.
func DecodeSweepSpace(r io.Reader) (*SweepSpace, error) {
	var s SweepSpace
	if err := plan.DecodeStrict(r, &s); err != nil {
		return nil, err
	}
	if err := s.Canonicalize(); err != nil {
		return nil, err
	}
	return &s, nil
}
