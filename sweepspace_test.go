package hwgc

import (
	"bytes"
	"strings"
	"testing"

	"hwgc/internal/core"
)

func int64p(v int64) *int64 { return &v }

func TestSweepSpaceCanonicalizeDefaults(t *testing.T) {
	s := SweepSpace{Benches: []string{"jlisp"}}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if s.V != SweepSpaceVersion {
		t.Fatalf("V = %d, want %d", s.V, SweepSpaceVersion)
	}
	if len(s.Scales) != 1 || s.Scales[0] != 1 {
		t.Fatalf("Scales = %v, want [1]", s.Scales)
	}
	if len(s.Seeds) != 1 || s.Seeds[0] != core.DefaultSeed {
		t.Fatalf("Seeds = %v, want [%d]", s.Seeds, core.DefaultSeed)
	}
	if s.MaxPoints != MaxSweepSpacePoints {
		t.Fatalf("MaxPoints = %d, want %d", s.MaxPoints, MaxSweepSpacePoints)
	}
	if s.Objective != ObjectiveSpeedupPerCore {
		t.Fatalf("Objective = %q", s.Objective)
	}
	if s.TopK != 16 {
		t.Fatalf("TopK = %d, want 16", s.TopK)
	}
	if s.Base.Cores != 1 {
		t.Fatalf("Base.Cores = %d, want defaulted 1", s.Base.Cores)
	}
}

// Two spellings of the same exploration — unsorted, duplicated lists, zero
// seeds, implicit defaults — must share one canonical encoding and key.
func TestSweepSpaceCanonicalizationIsSpellingInvariant(t *testing.T) {
	a := SweepSpace{
		Benches: []string{"javac", "jlisp", "javac"},
		Scales:  []int{2, 1, 2},
		Seeds:   []int64{0, 7},
		Axes: []SweepAxis{
			{Field: "MemLatency", Values: []int64{20, 10, 20}},
			{Field: "Cores", Values: []int64{4, 1}},
		},
		Constraints: []SweepConstraint{
			{A: "MemLatency", Op: ">=", Value: int64p(10)},
			{A: "Cores", Op: "<=", Value: int64p(4)},
		},
	}
	b := SweepSpace{
		V:       1,
		Benches: []string{"jlisp", "javac"},
		Scales:  []int{1, 2},
		Seeds:   []int64{7, core.DefaultSeed},
		Axes: []SweepAxis{
			{Field: "Cores", Values: []int64{1, 4}},
			{Field: "MemLatency", Values: []int64{10, 20}},
		},
		Constraints: []SweepConstraint{
			{A: "Cores", Op: "<=", Value: int64p(4)},
			{A: "MemLatency", Op: ">=", Value: int64p(10)},
		},
		MaxPoints: MaxSweepSpacePoints,
		Objective: ObjectiveSpeedupPerCore,
		TopK:      16,
	}
	aj, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("canonical encodings differ:\n%s\n%s", aj, bj)
	}
	ak, _ := a.Key()
	bk, _ := b.Key()
	if ak != bk || len(ak) != 64 {
		t.Fatalf("keys differ or malformed: %q vs %q", ak, bk)
	}
}

func TestSweepSpacePointsDeterministicOrder(t *testing.T) {
	mk := func() *SweepSpace {
		return &SweepSpace{
			Benches: []string{"jlisp", "compress"},
			Seeds:   []int64{1, 2},
			Axes: []SweepAxis{
				{Field: "Cores", Values: []int64{1, 2, 4}},
				{Field: "MemLatency", Values: []int64{10, 40}},
			},
		}
	}
	p1, err := mk().Points()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mk().Points()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 3 * 2
	if len(p1) != want || len(p2) != want {
		t.Fatalf("point counts %d/%d, want %d", len(p1), len(p2), want)
	}
	seen := map[string]bool{}
	for i := range p1 {
		if p1[i].Key != p2[i].Key || !bytes.Equal(p1[i].Canonical, p2[i].Canonical) {
			t.Fatalf("point %d differs across expansions", i)
		}
		if p1[i].Index != i {
			t.Fatalf("point %d has Index %d", i, p1[i].Index)
		}
		if seen[p1[i].Key] {
			t.Fatalf("duplicate point key %s", p1[i].Key)
		}
		seen[p1[i].Key] = true
	}
	// Canonical order: benches sorted, so compress before jlisp; within a
	// bench, seeds ascend; within a seed, axes ascend with Cores (sorted
	// first alphabetically) outermost.
	if p1[0].Req.Bench != "compress" || p1[0].Req.Seed != 1 || p1[0].Req.Config.Cores != 1 {
		t.Fatalf("first point out of canonical order: %+v", p1[0].Req)
	}
	if p1[1].Req.Config.MemLatency != 40 {
		t.Fatalf("second point should step the innermost axis, got MemLatency %d", p1[1].Req.Config.MemLatency)
	}
}

// A zero axis value resolves to the field's library default, which can
// collide with an explicitly spelled default; the expansion must dedupe
// such points by content key.
func TestSweepSpacePointsDedupeDefaultCollision(t *testing.T) {
	s := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "FIFOCapacity", Values: []int64{0, 32768, 1024}}},
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("planned %d points, want 2 (0 and 32768 canonicalize identically)", len(pts))
	}
}

// Enum axes canonicalize like integer axes: values sorted, duplicates
// removed, the empty spelling normalized to "none", and two spellings of the
// same exploration share one key.
func TestSweepSpaceEnumAxisCanonicalization(t *testing.T) {
	a := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "BarrierMode", Strings: []string{"satb", "", "incupdate", "satb"}}},
	}
	b := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "BarrierMode", Strings: []string{"incupdate", "none", "satb"}}},
	}
	aj, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("canonical encodings differ:\n%s\n%s", aj, bj)
	}
	want := []string{"incupdate", "none", "satb"}
	if len(a.Axes[0].Strings) != len(want) {
		t.Fatalf("Strings = %v, want %v", a.Axes[0].Strings, want)
	}
	for i, v := range want {
		if a.Axes[0].Strings[i] != v {
			t.Fatalf("Strings = %v, want %v", a.Axes[0].Strings, want)
		}
	}
}

// An enum axis crossed with integer axes expands deterministically, stepping
// its canonical (sorted) value order, and the "none" value canonicalizes to
// the same point as a base config that never mentions BarrierMode.
func TestSweepSpaceEnumAxisPoints(t *testing.T) {
	s := SweepSpace{
		Benches: []string{"jlisp"},
		Base:    Config{MutatorOps: 4096},
		Axes: []SweepAxis{
			{Field: "BarrierMode", Strings: []string{"none", "satb", "incupdate"}},
			{Field: "Cores", Values: []int64{1, 4}},
		},
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("planned %d points, want 6", len(pts))
	}
	// Axes sort alphabetically: BarrierMode outermost, Cores innermost.
	wantModes := []BarrierMode{
		BarrierIncUpdate, BarrierIncUpdate, BarrierNone, BarrierNone, BarrierSATB, BarrierSATB,
	}
	for i, p := range pts {
		if p.Req.Config.BarrierMode != wantModes[i] {
			t.Fatalf("point %d BarrierMode = %q, want %q", i, p.Req.Config.BarrierMode, wantModes[i])
		}
		if p.Req.Config.MutatorOps != 4096 {
			t.Fatalf("point %d lost Base.MutatorOps", i)
		}
	}
	// The "none" points must share keys with a space that leaves BarrierMode
	// at its default entirely.
	base := SweepSpace{
		Benches: []string{"jlisp"},
		Base:    Config{MutatorOps: 4096},
		Axes:    []SweepAxis{{Field: "Cores", Values: []int64{1, 4}}},
	}
	bpts, err := base.Points()
	if err != nil {
		t.Fatal(err)
	}
	if pts[2].Key != bpts[0].Key || pts[3].Key != bpts[1].Key {
		t.Fatal(`"none" axis points do not collide with the implicit default`)
	}
}

func TestSweepSpaceEnumAxisRejections(t *testing.T) {
	cases := []struct {
		name string
		s    SweepSpace
	}{
		{"enum field with Values", SweepSpace{Benches: []string{"jlisp"},
			Axes: []SweepAxis{{Field: "BarrierMode", Values: []int64{1}}}}},
		{"enum field with both lists", SweepSpace{Benches: []string{"jlisp"},
			Axes: []SweepAxis{{Field: "BarrierMode", Strings: []string{"satb"}, Values: []int64{1}}}}},
		{"enum field empty", SweepSpace{Benches: []string{"jlisp"},
			Axes: []SweepAxis{{Field: "BarrierMode"}}}},
		{"invalid enum value", SweepSpace{Benches: []string{"jlisp"},
			Axes: []SweepAxis{{Field: "BarrierMode", Strings: []string{"cardtable"}}}}},
		{"int field with Strings", SweepSpace{Benches: []string{"jlisp"},
			Axes: []SweepAxis{{Field: "Cores", Values: []int64{1}, Strings: []string{"satb"}}}}},
		{"enum field in constraint", SweepSpace{Benches: []string{"jlisp"},
			Constraints: []SweepConstraint{{A: "BarrierMode", Op: "==", Value: int64p(1)}}}},
		{"duplicate enum axis", SweepSpace{Benches: []string{"jlisp"}, Axes: []SweepAxis{
			{Field: "BarrierMode", Strings: []string{"satb"}},
			{Field: "BarrierMode", Strings: []string{"none"}}}}},
	}
	for _, tc := range cases {
		if err := tc.s.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize accepted", tc.name)
		}
	}
}

func TestSweepSpaceConstraints(t *testing.T) {
	s := SweepSpace{
		Benches: []string{"jlisp"},
		Axes: []SweepAxis{
			{Field: "Cores", Values: []int64{1, 2, 4, 8}},
			{Field: "MemBanks", Values: []int64{1, 2, 4, 8}},
		},
		// Field-vs-field and field-vs-literal constraints together: at
		// least one bank per core, at most 4 cores.
		Constraints: []SweepConstraint{
			{A: "MemBanks", Op: ">=", B: "Cores"},
			{A: "Cores", Op: "<=", Value: int64p(4)},
		},
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, c := range []int{1, 2, 4} {
		for _, m := range []int{1, 2, 4, 8} {
			if m >= c {
				want++
			}
		}
	}
	if len(pts) != want {
		t.Fatalf("planned %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Req.Config.MemBanks < p.Req.Config.Cores || p.Req.Config.Cores > 4 {
			t.Fatalf("constraint violated at point %+v", p.Req.Config)
		}
	}
}

func TestSweepSpaceRejections(t *testing.T) {
	cases := []struct {
		name string
		s    SweepSpace
	}{
		{"no benches", SweepSpace{}},
		{"unknown bench", SweepSpace{Benches: []string{"nope"}}},
		{"bad version", SweepSpace{V: 2, Benches: []string{"jlisp"}}},
		{"bad scale", SweepSpace{Benches: []string{"jlisp"}, Scales: []int{0}}},
		{"unknown axis field", SweepSpace{Benches: []string{"jlisp"}, Axes: []SweepAxis{{Field: "Bogus", Values: []int64{1}}}}},
		{"empty axis", SweepSpace{Benches: []string{"jlisp"}, Axes: []SweepAxis{{Field: "Cores"}}}},
		{"duplicate axis", SweepSpace{Benches: []string{"jlisp"}, Axes: []SweepAxis{
			{Field: "Cores", Values: []int64{1}}, {Field: "Cores", Values: []int64{2}}}}},
		{"invalid axis value", SweepSpace{Benches: []string{"jlisp"}, Axes: []SweepAxis{{Field: "Cores", Values: []int64{999}}}}},
		{"bad op", SweepSpace{Benches: []string{"jlisp"}, Constraints: []SweepConstraint{{A: "Cores", Op: "~", Value: int64p(1)}}}},
		{"both B and Value", SweepSpace{Benches: []string{"jlisp"}, Constraints: []SweepConstraint{{A: "Cores", Op: "<", B: "MemBanks", Value: int64p(1)}}}},
		{"neither B nor Value", SweepSpace{Benches: []string{"jlisp"}, Constraints: []SweepConstraint{{A: "Cores", Op: "<"}}}},
		{"unknown constraint field", SweepSpace{Benches: []string{"jlisp"}, Constraints: []SweepConstraint{{A: "Nope", Op: "<", Value: int64p(1)}}}},
		{"negative MaxPoints", SweepSpace{Benches: []string{"jlisp"}, MaxPoints: -1}},
		{"MaxPoints over cap", SweepSpace{Benches: []string{"jlisp"}, MaxPoints: MaxSweepSpacePoints + 1}},
		{"bad objective", SweepSpace{Benches: []string{"jlisp"}, Objective: "fastest"}},
		{"TopK over cap", SweepSpace{Benches: []string{"jlisp"}, TopK: MaxSweepFrontier + 1}},
		{"unsatisfiable constraints", SweepSpace{Benches: []string{"jlisp"}, Constraints: []SweepConstraint{{A: "Cores", Op: ">", Value: int64p(64)}}}},
		{"over point cap", SweepSpace{Benches: []string{"jlisp"}, MaxPoints: 2,
			Axes: []SweepAxis{{Field: "Cores", Values: []int64{1, 2, 4}}}}},
	}
	for _, tc := range cases {
		if err := tc.s.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize accepted", tc.name)
		}
	}
}

func TestSweepSpaceProductCap(t *testing.T) {
	// Blow the 2^20 pre-constraint product cap with wide value axes; the
	// rejection must come from the product bound, before any expansion.
	vals := make([]int64, 128)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	s := SweepSpace{
		Benches: []string{"jlisp"},
		Axes: []SweepAxis{
			{Field: "MemLatency", Values: vals},
			{Field: "MemBandwidth", Values: vals},
			{Field: "MemBanks", Values: vals},
		},
	}
	err := s.Canonicalize()
	if err == nil || !strings.Contains(err.Error(), "cross product") {
		t.Fatalf("err = %v, want cross-product cap rejection", err)
	}
}

func TestDecodeSweepSpaceStrict(t *testing.T) {
	good := `{"Benches":["jlisp"],"Axes":[{"Field":"Cores","Values":[1,2]}]}`
	s, err := DecodeSweepSpace(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.PointCount(); err != nil || n != 2 {
		t.Fatalf("points = %d err = %v, want 2", n, err)
	}
	for _, bad := range []string{
		`{"Benches":["jlisp"],"Bogus":1}`, // unknown field
		`{"Benches":["jlisp"]} trailing`,  // trailing data
		`{"Benches":[]}`,                  // fails canonicalization
		`{`,
	} {
		if _, err := DecodeSweepSpace(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeSweepSpace accepted %q", bad)
		}
	}
}

// Canonicalization must be idempotent: re-canonicalizing canonical bytes is
// a fixed point. The fuzz target leans on this same invariant.
func TestSweepSpaceCanonicalIdempotent(t *testing.T) {
	s := SweepSpace{
		Benches: []string{"db", "jlisp"},
		Seeds:   []int64{3, 0},
		Axes:    []SweepAxis{{Field: "Cores", Values: []int64{4, 1}}},
	}
	first, err := s.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeSweepSpace(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("canonicalization not idempotent:\n%s\n%s", first, second)
	}
}

// The NUMAPlacement axis canonicalizes its empty spelling to "naive" and a
// "naive" point collides with a base config that never mentions placement;
// a zero NUMADomains axis value collides with the flat machine.
func TestSweepSpaceNUMAAxes(t *testing.T) {
	s := SweepSpace{
		Benches: []string{"jlisp"},
		Base:    Config{NUMADomains: 4},
		Axes:    []SweepAxis{{Field: "NUMAPlacement", Strings: []string{"local", "", "naive"}}},
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Axes[0].Strings; len(got) != 2 || got[0] != "local" || got[1] != "naive" {
		t.Fatalf("Strings = %v, want [local naive]", got)
	}
	if len(pts) != 2 {
		t.Fatalf("planned %d points, want 2", len(pts))
	}
	if pts[0].Req.Config.NUMAPlacement != PlacementLocal ||
		pts[1].Req.Config.NUMAPlacement != PlacementNaive {
		t.Fatalf("placement order: %q, %q", pts[0].Req.Config.NUMAPlacement, pts[1].Req.Config.NUMAPlacement)
	}
	base := SweepSpace{Benches: []string{"jlisp"}, Base: Config{NUMADomains: 4}}
	bpts, err := base.Points()
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Key != bpts[0].Key {
		t.Fatal(`"naive" axis point does not collide with the implicit default`)
	}

	// A domain-count axis spans the flat machine (0) and NUMA machines; the
	// zero point must share its key with a space that never mentions NUMA.
	d := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "NUMADomains", Values: []int64{0, 2, 4}}},
	}
	dpts, err := d.Points()
	if err != nil {
		t.Fatal(err)
	}
	flat := SweepSpace{Benches: []string{"jlisp"}}
	fpts, err := flat.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(dpts) != 3 || dpts[0].Key != fpts[0].Key {
		t.Fatal("zero-domain axis point does not collide with the flat machine")
	}
	// Placement without domains is a dead knob: the axis collapses to one
	// canonical (flat) point.
	dead := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "NUMAPlacement", Strings: []string{"local", "naive"}}},
	}
	deadPts, err := dead.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(deadPts) != 1 || deadPts[0].Key != fpts[0].Key {
		t.Fatalf("dead placement knob planned %d points, want 1 flat point", len(deadPts))
	}
}

// Cache axes validate and canonicalize: a zero L1Sets value is the flat
// machine, and the dependent knobs (ways, MSHRs, line words) are dead
// without it.
func TestSweepSpaceCacheAxes(t *testing.T) {
	s := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "L1Sets", Values: []int64{0, 16, 64}}},
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("planned %d points, want 3", len(pts))
	}
	flat := SweepSpace{Benches: []string{"jlisp"}}
	fpts, err := flat.Points()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Key != fpts[0].Key {
		t.Fatal("zero-L1Sets point does not collide with the flat machine")
	}
	dead := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "MSHRs", Values: []int64{2, 8}}},
	}
	deadPts, err := dead.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(deadPts) != 1 || deadPts[0].Key != fpts[0].Key {
		t.Fatalf("dead MSHR knob planned %d points, want 1 flat point", len(deadPts))
	}
	// A negative gate value normalizes to "model off", like MutatorOps.
	neg := SweepSpace{
		Benches: []string{"jlisp"},
		Axes:    []SweepAxis{{Field: "L1Sets", Values: []int64{-1}}},
	}
	negPts, err := neg.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(negPts) != 1 || negPts[0].Key != fpts[0].Key {
		t.Fatal("negative L1Sets did not normalize to the flat machine")
	}
}
